(* Tests for the dynamics engine, policies, potentials and tree theory. *)
open Ncg_graph
open Ncg_game
open Ncg_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let max_sg n = Model.make Model.Sg Model.Max n
let sum_asg n = Model.make Model.Asg Model.Sum n

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_max_cost () =
  let model = max_sg 5 in
  let g = Gen.path 5 in
  let rng = Random.State.make [| 1 |] in
  let ws = Paths.Workspace.create 5 in
  match Policy.select Policy.Max_cost ~rng ~ws model g ~last:None with
  | Some u -> check "max cost policy picks an end of P5" true (u = 0 || u = 4)
  | None -> Alcotest.fail "someone is unhappy on P5"

let test_policy_converged () =
  let model = max_sg 5 in
  let g = Gen.star 5 in
  let rng = Random.State.make [| 1 |] in
  let ws = Paths.Workspace.create 5 in
  List.iter
    (fun p ->
      check "no mover on stable star" true
        (Policy.select p ~rng ~ws model g ~last:None = None))
    [ Policy.Max_cost; Policy.Random_unhappy; Policy.Round_robin ]

let test_policy_adversarial () =
  let model = max_sg 5 in
  let g = Gen.path 5 in
  let rng = Random.State.make [| 1 |] in
  let ws = Paths.Workspace.create 5 in
  let seen = ref [] in
  let p = Policy.Adversarial (fun _ unhappy -> seen := unhappy; None) in
  check "adversary may abort" true
    (Policy.select p ~rng ~ws model g ~last:None = None);
  Alcotest.(check (list int)) "adversary sees sorted unhappy set"
    [ 0; 1; 3; 4 ] !seen

(* On P5 under MAX-SG exactly {0, 1, 3, 4} are unhappy (the middle agent
   already has minimum eccentricity) — the fixture for the selection
   contract tests below. *)
let test_policy_round_robin_contract () =
  let model = max_sg 5 in
  let g = Gen.path 5 in
  let rng = Random.State.make [| 1 |] in
  let ws = Paths.Workspace.create 5 in
  let pick last =
    Policy.select Policy.Round_robin ~rng ~ws model g ~last
  in
  check "first sweep starts at 0" true (pick None = Some 0);
  check "continues after the last mover" true (pick (Some 0) = Some 1);
  check "skips the happy agent in between" true (pick (Some 1) = Some 3);
  check "a happy last mover still anchors the sweep" true
    (pick (Some 2) = Some 3);
  check "wraps around past the end" true (pick (Some 4) = Some 0);
  (* fairness: starting after u, agent u is probed last — from last=3 the
     next unhappy agent is 4, never 3 again *)
  check "last mover goes to the back of the queue" true (pick (Some 3) = Some 4)

let test_policy_only_unhappy_selected () =
  (* Selection contract: whatever the policy, the chosen agent has an
     improving move.  Fuzzed over random networks and both paths. *)
  let rng0 = Random.State.make [| 77 |] in
  for _ = 1 to 20 do
    let n = 4 + Random.State.int rng0 8 in
    let g = Gen.random_budget_network rng0 n 2 in
    let model = sum_asg n in
    let ws = Paths.Workspace.create n in
    let witness = Witness.create n in
    List.iter
      (fun policy ->
        let seed = Random.State.int rng0 10_000 in
        let naive =
          Policy.select policy
            ~rng:(Random.State.make [| seed |])
            ~ws model g ~last:None
        in
        let ctx = Response.Fast.create ws model g in
        let fast =
          Policy.select_fast policy
            ~rng:(Random.State.make [| seed |])
            ~ctx ~witness model g ~last:None
        in
        check "fast selection = naive selection" true (naive = fast);
        match naive with
        | Some u ->
            check "selected agent is unhappy" true
              (Response.is_unhappy model g u)
        | None ->
            check "no selection only at stability" true
              (Response.is_stable model g))
      [ Policy.Max_cost; Policy.Random_unhappy; Policy.Round_robin ]
  done

let test_policy_adversarial_contract () =
  let model = max_sg 5 in
  let g = Gen.path 5 in
  let ws = Paths.Workspace.create 5 in
  let rng = Random.State.make [| 1 |] in
  (* the scheduler's pick is honored verbatim *)
  let picky = Policy.Adversarial (fun _ unhappy -> Some (List.hd (List.rev unhappy))) in
  check "adversary's pick is used" true
    (Policy.select picky ~rng ~ws model g ~last:None = Some 4);
  (* the fast path hands the adversary the identical sorted unhappy set *)
  let seen_naive = ref [] and seen_fast = ref [] in
  let spy cell = Policy.Adversarial (fun _ unhappy -> cell := unhappy; None) in
  ignore (Policy.select (spy seen_naive) ~rng ~ws model g ~last:None);
  let ctx = Response.Fast.create ws model g in
  let witness = Witness.create 5 in
  ignore
    (Policy.select_fast (spy seen_fast) ~rng ~ctx ~witness model g ~last:None);
  Alcotest.(check (list int)) "fast adversary sees the same unhappy set"
    !seen_naive !seen_fast;
  check "every offered agent is genuinely unhappy" true
    (List.for_all (fun u -> Response.is_unhappy model g u) !seen_fast)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_converges_tree () =
  let model = max_sg 9 in
  let r = Engine.run (Engine.config model) (Gen.path 9) in
  check "converged" true (Engine.converged r);
  check "final stable" true (Response.is_stable model r.Engine.final);
  check "within Thm 2.1 bound" true
    (r.Engine.steps <= Theory.thm21_step_bound 9);
  check "stable tree is star or double star" true
    (match Theory.tree_shape r.Engine.final with
    | Theory.Star | Theory.Double_star -> true
    | Theory.Other_tree | Theory.Not_a_tree -> false)

let test_engine_deterministic () =
  let model = sum_asg 12 in
  let g = Gen.random_budget_network (Random.State.make [| 3 |]) 12 2 in
  let run seed =
    let r =
      Engine.run ~rng:(Random.State.make [| seed |]) (Engine.config model) g
    in
    (r.Engine.steps, Canonical.key r.Engine.final)
  in
  check "same seed same run" true (run 42 = run 42)

let test_engine_history () =
  let model = max_sg 7 in
  let r = Engine.run (Engine.config model) (Gen.path 7) in
  check_int "history length = steps" r.Engine.steps
    (List.length r.Engine.history);
  (* every recorded move strictly improved its mover *)
  let unit_price = Model.unit_price model in
  check "movers strictly improve" true
    (List.for_all
       (fun (s : Engine.step) ->
         Cost.lt ~unit_price s.Engine.cost_after s.Engine.cost_before)
       r.Engine.history);
  check "indices sequential" true
    (List.mapi (fun i _ -> i) r.Engine.history
    = List.map (fun (s : Engine.step) -> s.Engine.index) r.Engine.history);
  (* input graph untouched *)
  check "input preserved" true (Graph.equal (Gen.path 7) (Gen.path 7))

let test_engine_step_limit () =
  let model = max_sg 15 in
  let cfg = Engine.config ~max_steps:1 model in
  let r = Engine.run cfg (Gen.path 15) in
  check "step limit reported" true (r.Engine.reason = Engine.Step_limit);
  check_int "exactly one step" 1 r.Engine.steps

let test_engine_cycle_detection () =
  (* Fig. 3 has a unique unhappy agent with a unique best response in every
     state, so any policy and tie-break must fall into its 4-cycle. *)
  let inst = Ncg_instances.Fig3_sum_asg.instance in
  let cfg =
    Engine.config ~detect_cycles:true ~max_steps:50
      inst.Ncg_instances.Instance.model
  in
  let r = Engine.run cfg inst.Ncg_instances.Instance.initial in
  match r.Engine.reason with
  | Engine.Cycle_detected { period; _ } ->
      check_int "Fig. 3 cycle has period 4" 4 period
  | Engine.Converged | Engine.Step_limit | Engine.Time_limit
  | Engine.Invariant_violation _ ->
      Alcotest.fail "Fig. 3 must cycle"

let test_engine_any_improving () =
  (* Better-response dynamics on SUM-SG trees: the social-cost potential
     guarantees convergence even without best responses. *)
  let model = Model.make Model.Sg Model.Sum 10 in
  let cfg =
    Engine.config ~policy:Policy.Random_unhappy
      ~move_rule:Engine.Any_improving model
  in
  let g = Gen.random_tree (Random.State.make [| 11 |]) 10 in
  let r = Engine.run cfg g in
  check "better-response dynamics converge on trees" true
    (Engine.converged r);
  check "result stable" true (Response.is_stable model r.Engine.final)

let test_engine_round_robin () =
  let model = max_sg 8 in
  let cfg = Engine.config ~policy:Policy.Round_robin model in
  let r = Engine.run cfg (Gen.path 8) in
  check "round robin converges" true (Engine.converged r);
  check "round robin stable" true (Response.is_stable model r.Engine.final)

let test_engine_prefer_deletion () =
  (* With the deletion preference, a GBG agent whose best responses
     include a deletion must delete. *)
  let model =
    Model.make ~alpha:(Ncg_rational.Q.of_int 50) Model.Gbg Model.Sum 5
  in
  (* expensive alpha: deleting a redundant edge is the clear best move *)
  let g = Gen.star 5 in
  Graph.add_edge g ~owner:1 1 2;
  let cfg =
    Engine.config ~tie_break:Engine.Prefer_deletion ~max_steps:1 model
  in
  let r = Engine.run cfg g in
  (match r.Engine.history with
  | [ s ] ->
      check "first move is a deletion" true (s.Engine.effect = Move.Kdelete)
  | _ -> Alcotest.fail "expected exactly one step")

let test_engine_already_stable () =
  let model = max_sg 6 in
  let r = Engine.run (Engine.config model) (Gen.star 6) in
  check_int "zero steps on stable input" 0 r.Engine.steps;
  check "converged" true (Engine.converged r)

let prop_engine_tree_convergence =
  QCheck.Test.make ~count:60
    ~name:"MAX-SG converges on every random tree (Thm 2.1)"
    QCheck.(pair (int_bound 100_000) (int_range 3 20))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let r =
        Engine.run
          ~rng:(Random.State.make [| seed + 1 |])
          (Engine.config ~policy:Policy.Random_unhappy (max_sg n))
          g
      in
      Engine.converged r
      && r.Engine.steps <= Theory.thm21_step_bound n
      && Response.is_stable (max_sg n) r.Engine.final)

(* Uniform tie-breaking occasionally exceeds the Cor 3.2 step count by a
   hair: a 40k-input scan found 8 overshoots, never by more than 3 steps
   (e.g. tree seed 860 at n=10 takes 8 steps against a bound of 7).  The
   property therefore asserts convergence strictly and the step count
   against the bound plus an n/2 envelope, which the whole scanned space
   satisfies with margin. *)
let prop_sum_asg_tree_bound =
  QCheck.Test.make ~count:40
    ~name:"SUM-ASG trees + max cost within Cor 3.2 bound (+n/2 envelope)"
    QCheck.(pair (int_bound 100_000) (int_range 4 24))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let r =
        Engine.run
          ~rng:(Random.State.make [| seed + 1 |])
          (Engine.config ~policy:Policy.Max_cost (sum_asg n))
          g
      in
      Engine.converged r
      && r.Engine.steps <= Theory.cor32_sum_asg_bound n + (n / 2))

(* ------------------------------------------------------------------ *)
(* Potential                                                           *)
(* ------------------------------------------------------------------ *)

let improving_tree_swaps model g =
  List.concat_map
    (fun u ->
      List.map
        (fun e -> e.Response.move)
        (Response.improving_moves model g u))
    (Graph.vertices g)

let prop_lemma26_potential =
  QCheck.Test.make ~count:60
    ~name:"Lemma 2.6: sorted cost vector lex-decreases on MAX-SG tree swaps"
    QCheck.(pair (int_bound 100_000) (int_range 4 14))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let model = max_sg n in
      List.for_all (Potential.lex_decreases model g)
        (improving_tree_swaps model g))

let prop_sum_sg_social_potential =
  QCheck.Test.make ~count:60
    ~name:"SUM-SG trees: social cost decreases on improving swaps"
    QCheck.(pair (int_bound 100_000) (int_range 4 14))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let model = Model.make Model.Sg Model.Sum n in
      List.for_all (Potential.social_cost_decreases model g)
        (improving_tree_swaps model g))

let prop_diameter_monotone =
  QCheck.Test.make ~count:60
    ~name:"MAX-SG tree swaps never increase the diameter"
    QCheck.(pair (int_bound 100_000) (int_range 4 14))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let model = max_sg n in
      List.for_all (Potential.diameter_never_increases model g)
        (improving_tree_swaps model g))

(* ------------------------------------------------------------------ *)
(* Theory                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds () =
  check_int "cor32 even" 7 (Theory.cor32_sum_asg_bound 10);
  check_int "cor32 odd" 12 (Theory.cor32_sum_asg_bound 11);
  check_int "cor32 tiny" 0 (Theory.cor32_sum_asg_bound 2);
  check "thm21 grows like n^3" true
    (Theory.thm21_step_bound 20 > 6 * Theory.thm21_step_bound 10
     && Theory.thm21_step_bound 20 < 27 * Theory.thm21_step_bound 10);
  check "nlogn" true (abs_float (Theory.nlogn 8 -. 24.0) < 1e-9)

let test_shapes () =
  check "star shape" true (Theory.tree_shape (Gen.star 5) = Theory.Star);
  check "double star" true
    (Theory.tree_shape (Gen.double_star 2 2) = Theory.Double_star);
  check "other tree" true
    (Theory.tree_shape (Gen.path 6) = Theory.Other_tree);
  check "not a tree" true
    (Theory.tree_shape (Gen.cycle 5) = Theory.Not_a_tree);
  check "MAX stable shape: diameter 3 ok" true
    (Theory.stable_tree_shape_ok (max_sg 6) (Gen.double_star 2 2));
  check "MAX stable shape: P6 too long" false
    (Theory.stable_tree_shape_ok (max_sg 6) (Gen.path 6));
  check "SUM needs diameter <= 2" false
    (Theory.stable_tree_shape_ok (Model.make Model.Sg Model.Sum 6)
       (Gen.double_star 2 2))

let prop_tree_lemmas =
  QCheck.Test.make ~count:80
    ~name:"Lemmas 2.2/2.4/2.8 and Obs 2.9 on random trees"
    QCheck.(pair (int_bound 100_000) (int_range 3 16))
    (fun (seed, n) ->
      let g = Gen.random_tree (Random.State.make [| seed |]) n in
      let model = max_sg n in
      Theory.lemma28_holds g
      && Theory.obs29_holds g
      && List.for_all
           (fun m -> Theory.lemma22_holds g m && Theory.lemma24_holds g m)
           (improving_tree_swaps model g))

(* ------------------------------------------------------------------ *)
(* Audit and Chaos                                                     *)
(* ------------------------------------------------------------------ *)

let test_audit_clean () =
  let owned = sum_asg 8 in
  let g = Gen.random_budget_network (Random.State.make [| 5 |]) 8 2 in
  check "clean owned graph has no violations" true
    (Audit.check_graph owned g = []);
  check "clean graph passes with connectivity required" true
    (Audit.check_graph ~require_connected:true owned (Gen.star 8) = []);
  let unowned = max_sg 6 in
  check "clean unowned graph has no violations" true
    (Audit.check_graph unowned (Gen.path 6) = [])

let test_audit_detects_all_faults () =
  let model = sum_asg 9 in
  let g = Gen.random_budget_network (Random.State.make [| 7 |]) 9 2 in
  List.iter
    (fun fault ->
      check (Printf.sprintf "fault %s detected" (Chaos.label fault)) true
        (Chaos.detected model fault g))
    Chaos.all;
  check "non-improving move flagged" true
    (Chaos.non_improving_move_detected model (Gen.path 9))

let test_audit_ownership_gated () =
  (* An ownerless edge is a fault only in games that use ownership. *)
  let g = Gen.path 4 in
  Graph.Unsafe.set_owner_bit g 0 1 false;
  Graph.Unsafe.set_owner_bit g 1 0 false;
  check "ownerless flagged under ASG" true
    (List.exists
       (fun v -> v.Audit.kind = Audit.Ownerless_edge)
       (Audit.check_graph (sum_asg 4) g));
  check "ignored in the ownership-free SG" true
    (Audit.check_graph (max_sg 4) g = [])

let test_audit_kind_labels_roundtrip () =
  List.iter
    (fun fault ->
      let kind = Chaos.expected_kind fault in
      check "label roundtrip" true
        (Audit.kind_of_label (Audit.kind_label kind) = Some kind))
    Chaos.all

let test_engine_audit_no_false_positives () =
  let model = sum_asg 10 in
  let g = Gen.random_budget_network (Random.State.make [| 13 |]) 10 2 in
  let run audit =
    Engine.run
      ~rng:(Random.State.make [| 21 |])
      (Engine.config ~audit model) g
  in
  let plain = run Audit.Off and audited = run Audit.Every_step in
  check "audited run still converges" true (Engine.converged audited);
  check_int "audit does not change the trajectory" plain.Engine.steps
    audited.Engine.steps;
  let sampled = run (Audit.Sampled 3) in
  check "sampled audit converges too" true (Engine.converged sampled)

let test_engine_happy_agent_violation () =
  (* On P5 under MAX-SG the middle agent 2 is happy (cf. the adversarial
     policy test above).  A buggy scheduler that selects it anyway used to
     crash the engine with [assert false]; now it is a typed outcome. *)
  let model = max_sg 5 in
  let lying_policy = Policy.Adversarial (fun _ _ -> Some 2) in
  let r = Engine.run (Engine.config ~policy:lying_policy model) (Gen.path 5)
  in
  match r.Engine.reason with
  | Engine.Invariant_violation v ->
      check "flags the happy mover" true
        (v.Audit.kind = Audit.Happy_agent_selected && v.Audit.subject = Some 2)
  | _ -> Alcotest.fail "expected Invariant_violation"

let test_engine_time_budget () =
  let model = max_sg 15 in
  let cfg = Engine.config ~time_budget:(-1.0) model in
  let r = Engine.run cfg (Gen.path 15) in
  check "expired budget stops immediately" true
    (r.Engine.reason = Engine.Time_limit);
  check_int "no steps taken" 0 r.Engine.steps;
  let generous = Engine.config ~time_budget:3600.0 model in
  check "generous budget converges" true
    (Engine.converged (Engine.run generous (Gen.path 15)))

(* ------------------------------------------------------------------ *)
(* Stats and Trajectory                                                *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let model = max_sg 7 in
  let results =
    [ Engine.run (Engine.config model) (Gen.path 7);
      Engine.run (Engine.config model) (Gen.star 7) ]
  in
  let s = Stats.summarize results in
  check_int "runs" 2 s.Stats.runs;
  check_int "converged" 2 s.Stats.converged;
  check_int "cycles" 0 s.Stats.cycles;
  check_int "min is star's zero" 0 s.Stats.min_steps;
  check "avg between min and max" true
    (s.Stats.avg_steps >= 0.0
    && s.Stats.avg_steps <= float_of_int s.Stats.max_steps);
  let empty = Stats.summarize [] in
  check "empty avg is nan" true (Float.is_nan empty.Stats.avg_steps)

let test_trajectory () =
  let model =
    Model.make ~alpha:(Ncg_rational.Q.of_int 5) Model.Gbg Model.Sum 14
  in
  let g = Gen.random_m_edges (Random.State.make [| 9 |]) 14 30 in
  let r =
    Engine.run (Engine.config ~tie_break:Engine.Prefer_deletion model) g
  in
  let ops = Trajectory.count_ops r.Engine.history in
  check_int "op counts partition the history" r.Engine.steps
    (Trajectory.total ops);
  let phases = Trajectory.phases 3 r.Engine.history in
  check_int "three phases" 3 (Array.length phases);
  check_int "phases partition too" r.Engine.steps
    (Array.fold_left (fun acc c -> acc + Trajectory.total c) 0 phases);
  check_int "movers recorded" r.Engine.steps
    (List.length (Trajectory.movers r.Engine.history));
  check "dominant of empty" true
    (Trajectory.dominant (Trajectory.count_ops []) = None)

let test_efficiency () =
  let open Ncg_rational in
  (* SUM-BG on 4 agents, alpha = 3 (>= 2): the star is optimal. *)
  let model = Model.make ~alpha:(Q.of_int 3) Model.Bg Model.Sum 4 in
  check "star social cost = 3*3 + (3 + 3*5)" true
    (Q.equal (Efficiency.star_social_cost model) (Q.of_int (9 + 18)));
  check "clique = 6*3 + 12" true
    (Q.equal (Efficiency.clique_social_cost model) (Q.of_int 30));
  check "optimum = star" true
    (Q.equal (Efficiency.optimum_social_cost model) (Q.of_int 27));
  (* alpha = 1 (< 2): the clique wins *)
  let cheap = Model.make ~alpha:Q.one Model.Bg Model.Sum 4 in
  check "cheap optimum = clique" true
    (Q.equal (Efficiency.optimum_social_cost cheap)
       (Efficiency.clique_social_cost cheap));
  (* the star network achieves ratio 1 *)
  check "star ratio 1" true
    (Efficiency.efficiency_ratio model (Gen.star 4) = Some 1.0);
  check "disconnected has no ratio" true
    (Efficiency.efficiency_ratio model (Graph.create 4) = None);
  (* empirical PoA of the SUM-GBG is small *)
  let gbg = Model.make ~alpha:(Q.of_int 3) Model.Gbg Model.Sum 10 in
  let worst =
    Efficiency.worst_stable_ratio ~trials:5 gbg (fun rng ->
        Gen.random_m_edges rng 10 15)
  in
  check "stable networks nearly optimal" true (worst >= 1.0 && worst < 3.0)

let suite =
  ( "core",
    [
      Alcotest.test_case "max cost policy" `Quick test_policy_max_cost;
      Alcotest.test_case "policies on stable nets" `Quick
        test_policy_converged;
      Alcotest.test_case "adversarial policy" `Quick test_policy_adversarial;
      Alcotest.test_case "round-robin contract" `Quick
        test_policy_round_robin_contract;
      Alcotest.test_case "only unhappy agents selected" `Quick
        test_policy_only_unhappy_selected;
      Alcotest.test_case "adversarial contract" `Quick
        test_policy_adversarial_contract;
      Alcotest.test_case "engine converges on trees" `Quick
        test_engine_converges_tree;
      Alcotest.test_case "engine deterministic" `Quick
        test_engine_deterministic;
      Alcotest.test_case "engine history" `Quick test_engine_history;
      Alcotest.test_case "engine step limit" `Quick test_engine_step_limit;
      Alcotest.test_case "engine cycle detection" `Quick
        test_engine_cycle_detection;
      Alcotest.test_case "stable input" `Quick test_engine_already_stable;
      Alcotest.test_case "any-improving rule" `Quick
        test_engine_any_improving;
      Alcotest.test_case "round robin" `Quick test_engine_round_robin;
      Alcotest.test_case "deletion preference" `Quick
        test_engine_prefer_deletion;
      Alcotest.test_case "audit clean graphs" `Quick test_audit_clean;
      Alcotest.test_case "audit detects every fault class" `Quick
        test_audit_detects_all_faults;
      Alcotest.test_case "audit ownership gating" `Quick
        test_audit_ownership_gated;
      Alcotest.test_case "audit kind labels" `Quick
        test_audit_kind_labels_roundtrip;
      Alcotest.test_case "audited engine runs clean" `Quick
        test_engine_audit_no_false_positives;
      Alcotest.test_case "happy-mover violation" `Quick
        test_engine_happy_agent_violation;
      Alcotest.test_case "engine time budget" `Quick test_engine_time_budget;
      Alcotest.test_case "bound formulas" `Quick test_bounds;
      Alcotest.test_case "tree shapes" `Quick test_shapes;
      Alcotest.test_case "stats" `Quick test_stats;
      Alcotest.test_case "efficiency" `Quick test_efficiency;
      Alcotest.test_case "trajectory" `Quick test_trajectory;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [
          prop_engine_tree_convergence;
          prop_sum_asg_tree_bound;
          prop_lemma26_potential;
          prop_sum_sg_social_potential;
          prop_diameter_monotone;
          prop_tree_lemmas;
        ] )
