(* Differential oracle suite: the fast engine (witness cache, distance
   tables, bounded BFS, optional parallel scans) against the preserved
   naive engine ([Reference.run]).  Both are run on the same seeds and
   must produce byte-identical trajectories — same moves in the same
   order with the same recorded costs, same stop reason, same final
   network.  Every game type, both distance modes, the three standard
   policies, both move rules, the paper tie-breaks, cycle detection and
   multi-domain scans are exercised; well over 200 seeded runs total. *)
open Ncg_graph
open Ncg_game
open Ncg_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let reason_label = function
  | Engine.Converged -> "converged"
  | Engine.Cycle_detected { first_visit; period } ->
      Printf.sprintf "cycle(first=%d,period=%d)" first_visit period
  | Engine.Step_limit -> "step-limit"
  | Engine.Time_limit -> "time-limit"
  | Engine.Invariant_violation v ->
      Printf.sprintf "violation(%s)" (Audit.kind_label v.Audit.kind)

let same_step (a : Engine.step) (b : Engine.step) =
  a.Engine.index = b.Engine.index
  && a.Engine.move = b.Engine.move
  && a.Engine.effect = b.Engine.effect
  && a.Engine.cost_before = b.Engine.cost_before
  && a.Engine.cost_after = b.Engine.cost_after

(* Byte-identical trajectories: counts, histories, stop reasons, final
   networks (including edge ownership). *)
let identical (fast : Engine.result) (naive : Engine.result) =
  fast.Engine.steps = naive.Engine.steps
  && fast.Engine.reason = naive.Engine.reason
  && List.length fast.Engine.history = List.length naive.Engine.history
  && List.for_all2 same_step fast.Engine.history naive.Engine.history
  && Graph.equal fast.Engine.final naive.Engine.final
  && Canonical.key fast.Engine.final = Canonical.key naive.Engine.final

let assert_identical label cfg initial seed =
  let rng () = Random.State.make [| seed; 0xd1ff |] in
  let fast = Engine.run ~rng:(rng ()) cfg initial
  and naive = Reference.run ~rng:(rng ()) cfg initial in
  if not (identical fast naive) then
    Alcotest.failf "%s seed=%d diverged: fast %d steps (%s), naive %d steps (%s)"
      label seed fast.Engine.steps
      (reason_label fast.Engine.reason)
      naive.Engine.steps
      (reason_label naive.Engine.reason)

(* ------------------------------------------------------------------ *)
(* The matrix: 5 games x {SUM, MAX} x 3 policies x seeds               *)
(* ------------------------------------------------------------------ *)

let policies =
  [ ("max-cost", Policy.Max_cost);
    ("random-unhappy", Policy.Random_unhappy);
    ("round-robin", Policy.Round_robin) ]

(* Initial networks follow each game's paper process; the exponential
   games stay tiny to respect [Response.exhaustive_limit]. *)
let instance game rng =
  match game with
  | Model.Sg -> (10, Gen.random_connected rng 10 0.2)
  | Model.Asg -> (10, Gen.random_budget_network rng 10 2)
  | Model.Gbg -> (10, Gen.random_m_edges rng 10 14)
  | Model.Bg -> (5, Gen.random_connected rng 5 0.3)
  | Model.Bilateral -> (5, Gen.random_connected rng 5 0.3)

let matrix_case game () =
  let runs = ref 0 in
  List.iter
    (fun dist_mode ->
      List.iter
        (fun (pname, policy) ->
          for seed = 1 to 7 do
            let rng = Random.State.make [| seed; Hashtbl.hash game |] in
            let n, g = instance game rng in
            let model =
              Model.make ~alpha:(Ncg_rational.Q.of_int 3) game dist_mode n
            in
            let cfg =
              Engine.config ~policy ~max_steps:400 ~detect_cycles:true model
            in
            assert_identical
              (Printf.sprintf "%s/%s" (Model.game_name model) pname)
              cfg g seed;
            incr runs
          done)
        policies)
    [ Model.Sum; Model.Max ];
  check_int "runs per game in the matrix" 42 !runs

(* ------------------------------------------------------------------ *)
(* Off-matrix configurations                                           *)
(* ------------------------------------------------------------------ *)

let test_tie_breaks () =
  (* Prefer_deletion and First_candidate change which best move is
     played; the two engines must still agree move for move. *)
  List.iter
    (fun tie_break ->
      for seed = 1 to 5 do
        let rng = Random.State.make [| seed; 0x7b |] in
        let g = Gen.random_m_edges rng 12 20 in
        let model =
          Model.make ~alpha:(Ncg_rational.Q.of_int 3) Model.Gbg Model.Sum 12
        in
        let cfg = Engine.config ~tie_break ~max_steps:400 model in
        assert_identical "gbg tie-break" cfg g seed
      done)
    [ Engine.Uniform; Engine.Prefer_deletion; Engine.First_candidate ]

let test_any_improving () =
  (* Better-response dynamics: the uniformly-random improving move is
     drawn from the full [improving_moves] list, so list order and length
     both matter for RNG lockstep. *)
  for seed = 1 to 6 do
    let rng = Random.State.make [| seed; 0xa1 |] in
    let g = Gen.random_tree rng 9 in
    let model = Model.make Model.Sg Model.Sum 9 in
    let cfg =
      Engine.config ~policy:Policy.Random_unhappy
        ~move_rule:Engine.Any_improving model
    in
    assert_identical "any-improving" cfg g seed
  done

let test_adversarial () =
  (* The adversary sees the same sorted unhappy set on both paths. *)
  for seed = 1 to 5 do
    let rng = Random.State.make [| seed; 0xad |] in
    let g = Gen.random_budget_network rng 9 2 in
    let pick g unhappy =
      (* deterministic but state-dependent choice *)
      Some (List.nth unhappy (Graph.m g mod List.length unhappy))
    in
    let model = Model.make Model.Asg Model.Sum 9 in
    let cfg =
      Engine.config ~policy:(Policy.Adversarial pick) ~max_steps:300 model
    in
    assert_identical "adversarial" cfg g seed
  done

let test_cycle_parity () =
  (* Fig. 3 cycles; both engines must report the identical cycle. *)
  let inst = Ncg_instances.Fig3_sum_asg.instance in
  let cfg =
    Engine.config ~detect_cycles:true ~max_steps:50
      inst.Ncg_instances.Instance.model
  in
  assert_identical "fig3 cycle" cfg inst.Ncg_instances.Instance.initial 1;
  let r = Engine.run cfg inst.Ncg_instances.Instance.initial in
  check "fast engine still finds the 4-cycle" true
    (match r.Engine.reason with
    | Engine.Cycle_detected { period = 4; _ } -> true
    | _ -> false)

let test_audited_parity () =
  for seed = 1 to 4 do
    let rng = Random.State.make [| seed; 0xab |] in
    let g = Gen.random_budget_network rng 10 2 in
    let model = Model.make Model.Asg Model.Sum 10 in
    let cfg = Engine.config ~audit:Audit.Every_step model in
    assert_identical "audited" cfg g seed
  done

let test_scan_domains () =
  (* Parallel cost scans are a throughput knob only: any domain count
     yields the same trajectory as the reference. *)
  List.iter
    (fun scan_domains ->
      for seed = 1 to 3 do
        let rng = Random.State.make [| seed; 0xd0 |] in
        let g = Gen.random_m_edges rng 20 32 in
        let model =
          Model.make ~alpha:(Ncg_rational.Q.of_int 5) Model.Gbg Model.Sum 20
        in
        let cfg = Engine.config ~scan_domains ~max_steps:400 model in
        assert_identical
          (Printf.sprintf "scan-domains=%d" scan_domains)
          cfg g seed
      done)
    [ 2; 4 ]

let test_incremental_column () =
  (* The cross-step cache changes *when* distances are computed, never
     their values: with the cache on (the default), off, and against the
     reference, all three trajectories must be byte-identical — and the
     incremental run must actually exercise the cache (keeps/repairs). *)
  let exercised = ref 0 in
  List.iter
    (fun (game, dist_mode, mk) ->
      for seed = 1 to 5 do
        let rng = Random.State.make [| seed; 0x1ac |] in
        let n, g = mk rng in
        let model =
          Model.make ~alpha:(Ncg_rational.Q.of_int 3) game dist_mode n
        in
        let run incremental =
          Engine.run
            ~rng:(Random.State.make [| seed; 0xd1ff |])
            (Engine.config ~incremental ~max_steps:400 model)
            g
        in
        let inc = run true and plain = run false in
        let naive =
          Reference.run
            ~rng:(Random.State.make [| seed; 0xd1ff |])
            (Engine.config ~max_steps:400 model)
            g
        in
        check "incremental = plain fast" true (identical inc plain);
        check "incremental = reference" true (identical inc naive);
        exercised :=
          !exercised + inc.Engine.cache.Distcache.kept
          + inc.Engine.cache.Distcache.repaired;
        check_int "plain fast path reports no cache activity" 0
          (plain.Engine.cache.Distcache.kept
          + plain.Engine.cache.Distcache.repaired
          + plain.Engine.cache.Distcache.rebuilt)
      done)
    [
      (Model.Gbg, Model.Sum, fun rng -> (12, Gen.random_m_edges rng 12 20));
      (Model.Gbg, Model.Max, fun rng -> (12, Gen.random_m_edges rng 12 20));
      (Model.Sg, Model.Sum, fun rng -> (10, Gen.random_connected rng 10 0.2));
      (Model.Asg, Model.Sum, fun rng -> (10, Gen.random_budget_network rng 10 2));
    ];
  check "incremental runs kept or repaired tables across steps" true
    (!exercised > 0)

(* ------------------------------------------------------------------ *)
(* Building-block parity: Fast vs naive Response, witness probes       *)
(* ------------------------------------------------------------------ *)

let arb_state =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 100_000) (int_range 3 12))

let games_under_test =
  (* the polynomial games, where every vertex can be scanned quickly *)
  [ (Model.Sg, Model.Max); (Model.Sg, Model.Sum);
    (Model.Asg, Model.Sum); (Model.Gbg, Model.Sum); (Model.Gbg, Model.Max) ]

let prop_fast_response_parity =
  QCheck.Test.make ~count:60
    ~name:"Fast best_moves/improving_moves/is_unhappy = naive on random nets"
    arb_state
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let g = Gen.random_connected rng n 0.25 in
      let ws = Paths.Workspace.create n in
      List.for_all
        (fun (game, dist_mode) ->
          let model =
            Model.make ~alpha:(Ncg_rational.Q.of_int 2) game dist_mode n
          in
          let ctx = Response.Fast.create ws model g in
          List.for_all
            (fun u ->
              Response.Fast.is_unhappy ctx u = Response.is_unhappy model g u
              && Response.Fast.improving_moves ctx u
                 = Response.improving_moves model g u
              && Response.Fast.best_moves ctx u = Response.best_moves model g u)
            (Graph.vertices g))
        games_under_test)

let prop_witness_probe_parity =
  QCheck.Test.make ~count:60
    ~name:"witness probes match naive is_unhappy across a whole run"
    arb_state
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let m = min (n + 2) (n * (n - 1) / 2) in
      let g = Graph.copy (Gen.random_m_edges rng n m) in
      let model =
        Model.make ~alpha:(Ncg_rational.Q.of_int 2) Model.Gbg Model.Sum n
      in
      let ws = Paths.Workspace.create n in
      let witness = Witness.create n in
      (* walk the dynamics by hand, probing everyone at every state *)
      let ok = ref true in
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 40 do
        let ctx = Response.Fast.create ws model g in
        List.iter
          (fun u ->
            if Witness.probe witness ctx u <> Response.is_unhappy model g u
            then ok := false)
          (Graph.vertices g);
        match
          List.find_map
            (fun u -> Response.Fast.find_improving ctx u)
            (Graph.vertices g)
        with
        | Some e ->
            ignore (Move.apply g e.Response.move);
            Witness.clear witness (Move.agent e.Response.move);
            incr steps
        | None -> continue := false
      done;
      !ok)

let test_witness_hits () =
  (* A stable witness must keep answering probes without a rescan. *)
  let n = 8 in
  let model = Model.make Model.Sg Model.Max n in
  let g = Gen.path n in
  let ws = Paths.Workspace.create n in
  let witness = Witness.create n in
  let probe () =
    let ctx = Response.Fast.create ws model g in
    check "path end stays unhappy" true (Witness.probe witness ctx 0)
  in
  probe ();
  check_int "first probe scans" 1 (Witness.scans witness);
  check_int "no hit yet" 0 (Witness.hits witness);
  probe ();
  probe ();
  check_int "later probes hit the witness" 2 (Witness.hits witness);
  check_int "no further scans" 1 (Witness.scans witness);
  check "witness is cached for the agent" true
    (match Witness.get witness 0 with
    | Some m -> Move.agent m = 0
    | None -> false);
  Witness.clear witness 0;
  probe ();
  check_int "cleared witness forces a rescan" 2 (Witness.scans witness)

let suite =
  ( "differential",
    [
      Alcotest.test_case "matrix: SG" `Quick (matrix_case Model.Sg);
      Alcotest.test_case "matrix: ASG" `Quick (matrix_case Model.Asg);
      Alcotest.test_case "matrix: GBG" `Quick (matrix_case Model.Gbg);
      Alcotest.test_case "matrix: BG" `Quick (matrix_case Model.Bg);
      Alcotest.test_case "matrix: bilateral" `Quick
        (matrix_case Model.Bilateral);
      Alcotest.test_case "tie-breaks" `Quick test_tie_breaks;
      Alcotest.test_case "any-improving rule" `Quick test_any_improving;
      Alcotest.test_case "adversarial scheduler" `Quick test_adversarial;
      Alcotest.test_case "cycle-detection parity" `Quick test_cycle_parity;
      Alcotest.test_case "audited-run parity" `Quick test_audited_parity;
      Alcotest.test_case "parallel scan parity" `Quick test_scan_domains;
      Alcotest.test_case "incremental-cache parity" `Quick
        test_incremental_column;
      Alcotest.test_case "witness hit accounting" `Quick test_witness_hits;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_fast_response_parity; prop_witness_probe_parity ] )
