(* Tests for the experiment harness and the parallel substrate. *)
open Ncg_game
open Ncg_core
open Ncg_experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  let xs = List.init 37 (fun i -> i) in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "sequential" expected
    (Ncg_parallel.Pool.map (fun x -> x * x) xs);
  Alcotest.(check (list int)) "parallel preserves order" expected
    (Ncg_parallel.Pool.map ~domains:3 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "more domains than items" [ 4 ]
    (Ncg_parallel.Pool.map ~domains:8 (fun x -> x * x) [ 2 ]);
  check_int "map_reduce" 55
    (Ncg_parallel.Pool.map_reduce ~domains:2 ~map:(fun x -> x * x)
       ~combine:( + ) 0
       [ 1; 2; 3; 4; 5 ]);
  check "recommended domains positive" true
    (Ncg_parallel.Pool.recommended_domains () >= 1)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let small_spec () =
  let model = Model.make Model.Asg Model.Sum 12 in
  Runner.spec model (fun rng -> Ncg_graph.Gen.random_budget_network rng 12 2)

let test_runner_deterministic () =
  let s1 = Runner.run ~trials:6 (small_spec ()) in
  let s2 = Runner.run ~trials:6 (small_spec ()) in
  check "same seed, same summary" true (s1 = s2);
  let s3 = Runner.run ~seed:999 ~trials:6 (small_spec ()) in
  check "summaries carry runs" true (s3.Stats.runs = 6)

let test_runner_parallel_matches_sequential () =
  let s1 = Runner.run ~domains:1 ~trials:8 (small_spec ()) in
  let s2 = Runner.run ~domains:4 ~trials:8 (small_spec ()) in
  check "domains do not change results" true (s1 = s2)

let test_runner_converges () =
  let s = Runner.run ~trials:10 (small_spec ()) in
  check_int "all converged" 10 s.Stats.converged;
  check_int "no cycles" 0 s.Stats.cycles;
  check "within 5n" true (s.Stats.max_steps <= 5 * 12)

(* ------------------------------------------------------------------ *)
(* Robustness: crashing trials, budgets, checkpoint/resume             *)
(* ------------------------------------------------------------------ *)

let test_runner_survives_crashing_trial () =
  let model = Model.make Model.Asg Model.Sum 10 in
  let trial_counter = Atomic.make 0 in
  let spec =
    Runner.spec model (fun rng ->
        let k = Atomic.fetch_and_add trial_counter 1 in
        if k = 3 then failwith "injected trial failure";
        Ncg_graph.Gen.random_budget_network rng 10 2)
  in
  let s = Runner.run ~trials:8 spec in
  check_int "all trials counted" 8 s.Stats.runs;
  check_int "one error recorded" 1 s.Stats.errors;
  check_int "seven trials converged" 7 s.Stats.converged

let test_runner_time_budget () =
  let model = Model.make Model.Asg Model.Sum 12 in
  let spec =
    Runner.spec ~time_budget:(-1.0) model (fun rng ->
        Ncg_graph.Gen.random_budget_network rng 12 2)
  in
  let s = Runner.run ~trials:5 spec in
  check_int "every trial hit the wall clock" 5 s.Stats.timed_out;
  check_int "none converged" 0 s.Stats.converged

let test_runner_audited () =
  let model = Model.make Model.Asg Model.Sum 12 in
  let spec =
    Runner.spec ~audit:Ncg_core.Audit.Every_step model (fun rng ->
        Ncg_graph.Gen.random_budget_network rng 12 2)
  in
  let plain =
    Runner.run ~trials:6
      (Runner.spec model (fun rng ->
           Ncg_graph.Gen.random_budget_network rng 12 2))
  in
  let audited = Runner.run ~trials:6 spec in
  check_int "no violations on healthy dynamics" 0 audited.Stats.faulted;
  check "audit does not change the statistics" true
    (plain.Stats.avg_steps = audited.Stats.avg_steps
    && plain.Stats.max_steps = audited.Stats.max_steps)

let with_temp_checkpoint f =
  let path = Filename.temp_file "ncg_ckpt" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_resume_parity () =
  with_temp_checkpoint (fun path ->
      let spec () = small_spec () in
      let uninterrupted = Runner.run ~trials:9 (spec ()) in
      (* phase 1: run only a prefix of the trials, recording them *)
      let cp = Checkpoint.open_ ~fingerprint:"parity" path in
      let partial =
        Runner.run_outcomes ~checkpoint:cp ~key:"pt" ~trials:4 (spec ())
      in
      Checkpoint.close cp;
      check_int "four recorded" 4 (List.length partial);
      (* phase 2: resume with the full trial count; the four completed
         trials load from disk, the rest run fresh *)
      let cp = Checkpoint.open_ ~resume:true ~fingerprint:"parity" path in
      check_int "completed trials loaded" 4
        (List.length (Checkpoint.completed cp ~key:"pt"));
      let resumed = Runner.run ~checkpoint:cp ~key:"pt" ~trials:9 (spec ()) in
      Checkpoint.close cp;
      check "resumed summary equals uninterrupted" true
        (resumed = uninterrupted))

let test_checkpoint_outcome_roundtrip () =
  with_temp_checkpoint (fun path ->
      let outcomes =
        [ Stats.of_verdict
            (Stats.Finished { reason = Engine.Converged; steps = 12 });
          Stats.of_verdict ~attempts:2
            (Stats.Finished
               { reason =
                   Engine.Cycle_detected { first_visit = 3; period = 4 };
                 steps = 7 });
          Stats.of_verdict ~degraded:true
            (Stats.Finished { reason = Engine.Step_limit; steps = 600 });
          Stats.of_verdict
            (Stats.Finished { reason = Engine.Time_limit; steps = 41 });
          Stats.of_verdict
            (Stats.Finished
               { reason =
                   Engine.Invariant_violation
                     {
                       Ncg_core.Audit.kind = Ncg_core.Audit.Self_loop;
                       step = 5;
                       subject = Some 2;
                       detail = "tab\there and\nnewline";
                     };
                 steps = 5 });
          Stats.of_verdict ~attempts:3 ~quarantined:true
            (Stats.Crashed
               { exn = "Failure(\"boom\")"; backtrace = "frame 0" })
        ]
      in
      let cp = Checkpoint.open_ ~fingerprint:"rt" path in
      List.iteri
        (fun trial o -> Checkpoint.record cp ~key:"k" ~trial o)
        outcomes;
      Checkpoint.close cp;
      let cp = Checkpoint.open_ ~resume:true ~fingerprint:"rt" path in
      let loaded =
        List.sort compare (Checkpoint.completed cp ~key:"k")
      in
      Checkpoint.close cp;
      check "every outcome survives the disk roundtrip" true
        (loaded = List.mapi (fun i o -> (i, o)) outcomes))

let test_checkpoint_fingerprint_mismatch () =
  with_temp_checkpoint (fun path ->
      let cp = Checkpoint.open_ ~fingerprint:"sweep A" path in
      Checkpoint.record cp ~key:"k" ~trial:0
        (Stats.of_verdict
           (Stats.Finished { reason = Engine.Converged; steps = 1 }));
      Checkpoint.close cp;
      match Checkpoint.open_ ~resume:true ~fingerprint:"sweep B" path with
      | _ -> Alcotest.fail "mismatched fingerprint must be refused"
      | exception Failure _ -> check "refused" true true)

let test_checkpoint_torn_line_ignored () =
  with_temp_checkpoint (fun path ->
      let cp = Checkpoint.open_ ~fingerprint:"torn" path in
      Checkpoint.record cp ~key:"k" ~trial:0
        (Stats.of_verdict
           (Stats.Finished { reason = Engine.Converged; steps = 10 }));
      Checkpoint.record cp ~key:"k" ~trial:1
        (Stats.of_verdict
           (Stats.Finished { reason = Engine.Converged; steps = 20 }));
      Checkpoint.close cp;
      (* simulate a crash mid-write: truncate the last record *)
      let contents =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let oc = open_out_bin path in
      output_string oc (String.sub contents 0 (String.length contents - 7));
      close_out oc;
      let cp = Checkpoint.open_ ~resume:true ~fingerprint:"torn" path in
      let loaded = Checkpoint.completed cp ~key:"k" in
      let report = Checkpoint.load_report cp in
      Checkpoint.close cp;
      check_int "torn record dropped, intact one kept" 1 (List.length loaded);
      check_int "the torn line is reported, not silent" 1
        (List.length report.Checkpoint.corrupted);
      check "reported as the tail" true
        (match report.Checkpoint.corrupted with
        | [ c ] -> c.Checkpoint.tail
        | _ -> false))

(* Regression for the v1 loader's silent data loss: malformed lines were
   skipped without a trace.  The v2 loader reading a v1 file must load
   every valid record AND surface each malformed line. *)
let test_checkpoint_v1_malformed_lines_surfaced () =
  with_temp_checkpoint (fun path ->
      let oc = open_out path in
      output_string oc
        (String.concat "\n"
           [
             "# ncg-checkpoint v1\tv1-regression";
             "k\t0\tok\t10";
             "k\t1\tok\tnot-an-int";  (* malformed steps *)
             "k\t2\tbogus-tag\t5";  (* unknown tag *)
             "k\t3\tok\t30";
             "";
           ]);
      close_out oc;
      let cp = Checkpoint.open_ ~resume:true ~fingerprint:"v1-regression" path in
      let loaded = Checkpoint.completed cp ~key:"k" in
      let report = Checkpoint.load_report cp in
      Checkpoint.close cp;
      check_int "both valid records loaded" 2 (List.length loaded);
      check_int "both malformed lines counted" 2
        (List.length report.Checkpoint.corrupted);
      check "lines 3 and 4 identified" true
        (List.map (fun c -> c.Checkpoint.line) report.Checkpoint.corrupted
        = [ 3; 4 ]);
      check "migration to v2 reported" true report.Checkpoint.migrated_from_v1)

(* ------------------------------------------------------------------ *)
(* Retry, backoff, quarantine                                          *)
(* ------------------------------------------------------------------ *)

let test_backoff_budget () =
  check "no budget stays none" true
    (Runner.backoff_budget None ~attempt:3 = None);
  Alcotest.(check (float 1e-9))
    "attempt 0 keeps the budget" 0.5
    (Option.get (Runner.backoff_budget (Some 0.5) ~attempt:0));
  Alcotest.(check (float 1e-9))
    "attempt 1 doubles it" 1.0
    (Option.get (Runner.backoff_budget (Some 0.5) ~attempt:1));
  Alcotest.(check (float 1e-9))
    "attempt 2 doubles again" 2.0
    (Option.get (Runner.backoff_budget (Some 0.5) ~attempt:2))

(* A trial that always times out: retried with a doubled budget each
   attempt, and after the last retry it is quarantined with the attempt
   count on record. *)
let test_timeout_retries_then_quarantine () =
  let model = Model.make Model.Asg Model.Sum 12 in
  let spec =
    Runner.spec ~time_budget:(-1.0) ~max_retries:2 model (fun rng ->
        Ncg_graph.Gen.random_budget_network rng 12 2)
  in
  let outcomes = Runner.run_outcomes ~trials:3 spec in
  check_int "three outcomes" 3 (List.length outcomes);
  List.iter
    (fun (o : Stats.outcome) ->
      check "timed out" true
        (match o.Stats.verdict with
        | Stats.Finished { reason = Engine.Time_limit; _ } -> true
        | _ -> false);
      check_int "all attempts used" 3 o.Stats.attempts;
      check "quarantined" true o.Stats.quarantined)
    outcomes;
  let s = Stats.summarize_outcomes outcomes in
  check_int "summary timed_out" 3 s.Stats.timed_out;
  check_int "summary retried" 3 s.Stats.retried;
  check_int "summary quarantined" 3 s.Stats.quarantined

(* A trial that crashes on its first attempt only: the retry (fresh
   sub-seed) succeeds and nothing is quarantined. *)
let test_flaky_trial_recovers_on_retry () =
  let model = Model.make Model.Asg Model.Sum 10 in
  let calls = Atomic.make 0 in
  let spec =
    Runner.spec ~max_retries:2 model (fun rng ->
        if Atomic.fetch_and_add calls 1 = 0 then failwith "flaky attempt";
        Ncg_graph.Gen.random_budget_network rng 10 2)
  in
  let s = Runner.run ~trials:1 spec in
  check_int "the trial converged" 1 s.Stats.converged;
  check_int "no error in the statistics" 0 s.Stats.errors;
  check_int "counted as retried" 1 s.Stats.retried;
  check_int "not quarantined" 0 s.Stats.quarantined

(* Without retries enabled, behavior is exactly the historical one: a
   single attempt, no quarantine flags, whatever the verdict. *)
let test_no_retries_is_historical_behavior () =
  let model = Model.make Model.Asg Model.Sum 12 in
  let spec =
    Runner.spec ~time_budget:(-1.0) model (fun rng ->
        Ncg_graph.Gen.random_budget_network rng 12 2)
  in
  let outcomes = Runner.run_outcomes ~trials:2 spec in
  List.iter
    (fun (o : Stats.outcome) ->
      check_int "single attempt" 1 o.Stats.attempts;
      check "not quarantined" false o.Stats.quarantined)
    outcomes

let test_quarantine_reaches_incident_log () =
  let log_path = Filename.temp_file "ncg_incidents" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let model = Model.make Model.Asg Model.Sum 10 in
      let spec =
        Runner.spec ~max_retries:1 model (fun _ -> failwith "always broken")
      in
      let log = Incident_log.open_ log_path in
      let s =
        Runner.run ~incidents:log ~trials:2 spec
      in
      Incident_log.close log;
      check_int "both trials quarantined" 2 s.Stats.quarantined;
      let ic = open_in log_path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      check_int "one JSON line per quarantined trial" 2 (List.length !lines);
      List.iter
        (fun line ->
          check "records the event kind" true
            (Astring_like.contains line "\"quarantined\"");
          check "records the attempt count" true
            (Astring_like.contains line "\"attempts\":2"))
        !lines)

let test_sweep_checkpoint_resume () =
  with_temp_checkpoint (fun path ->
      let params checkpoint =
        { (Asg_budget.default Model.Sum) with
          Asg_budget.budgets = [ 2 ];
          policies = [ List.hd Asg_budget.paper_policies ];
          ns = [ 8; 10 ];
          trials = 5;
          checkpoint }
      in
      let reference = Asg_budget.sweep (params None) in
      let fingerprint = "sweep-test" in
      (* interrupted attempt: only the n=8 point runs *)
      let cp = Checkpoint.open_ ~fingerprint path in
      ignore
        (Asg_budget.sweep
           { (params (Some cp)) with Asg_budget.ns = [ 8 ] });
      Checkpoint.close cp;
      (* resumed full sweep *)
      let cp = Checkpoint.open_ ~resume:true ~fingerprint path in
      let resumed = Asg_budget.sweep (params (Some cp)) in
      Checkpoint.close cp;
      check "resumed sweep matches the uninterrupted reference" true
        (resumed = reference))

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

let test_asg_sweep_structure () =
  let p =
    { (Asg_budget.default Model.Sum) with
      Asg_budget.budgets = [ 1; 2 ];
      ns = [ 8; 12 ];
      trials = 3 }
  in
  let curves = Asg_budget.sweep p in
  check_int "budgets x policies curves" 4 (List.length curves);
  List.iter
    (fun (c : Series.curve) ->
      check_int "points per curve" 2 (List.length c.Series.points))
    curves;
  check "labels follow the paper" true
    (List.exists (fun c -> c.Series.label = "k=2 max cost") curves)

let test_gbg_sweep_structure () =
  let p =
    { (Gbg_sweep.default Model.Max) with
      Gbg_sweep.m_factors = [ 1 ];
      alphas = [ Gbg_sweep.Alpha_n_over 4 ];
      ns = [ 10 ];
      trials = 3 }
  in
  let curves = Gbg_sweep.sweep p in
  check_int "two curves (policies)" 2 (List.length curves);
  check "alpha labels" true
    (Gbg_sweep.alpha_label (Gbg_sweep.Alpha_n_over 4) = "a=n/4"
    && Gbg_sweep.alpha_label (Gbg_sweep.Alpha_n_over 1) = "a=n");
  check "alpha value exact" true
    (Ncg_rational.Q.equal
       (Gbg_sweep.alpha_of (Gbg_sweep.Alpha_n_over 4) 10)
       (Ncg_rational.Q.make 5 2))

let test_topology_settings () =
  let rng = Random.State.make [| 1 |] in
  let rl = Topology.generate Topology.Random_line rng 9 in
  check "rl is a tree" true (Ncg_graph.Tree.is_tree rl);
  let dl = Topology.generate Topology.Directed_line rng 9 in
  check "dl ownership directed" true
    (List.for_all (fun i -> Ncg_graph.Graph.owns dl i (i + 1))
       (List.init 8 (fun i -> i)));
  let rnd = Topology.generate Topology.Random_net rng 9 in
  check_int "random has n edges" 9 (Ncg_graph.Graph.m rnd);
  Alcotest.(check string) "labels" "rl" (Topology.setting_label Topology.Random_line)

let test_topology_sweep_runs () =
  let p =
    { (Topology.default Model.Sum) with
      Topology.settings = [ Topology.Directed_line ];
      alphas = [ Gbg_sweep.Alpha_n_over 4 ];
      ns = [ 10 ];
      trials = 2 }
  in
  let curves = Topology.sweep p in
  check_int "curves" 2 (List.length curves);
  List.iter
    (fun (c : Series.curve) ->
      List.iter
        (fun (pt : Series.point) ->
          check "trials all converged" true
            (pt.Series.summary.Stats.converged = 2))
        c.Series.points)
    curves

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

let fake_curves () =
  let summary steps =
    Stats.summarize
      [ { Engine.reason = Engine.Converged; steps; history = [];
          final = Ncg_graph.Gen.path 2;
          sentinel = Sentinel.clean_report;
          cache = Ncg_game.Distcache.zero_stats;
          residency = Ncg_game.Distcache.zero_residency } ]
  in
  [ { Series.label = "a";
      points =
        [ { Series.n = 10; summary = summary 30 };
          { Series.n = 20; summary = summary 90 } ] };
    { Series.label = "b";
      points = [ { Series.n = 10; summary = summary 55 } ] } ]

let test_series_envelope () =
  let curves = fake_curves () in
  let verdicts = Series.envelope (fun n -> float_of_int (5 * n)) "5n" curves in
  check "a within 5n" true (List.assoc "a: 5n" verdicts);
  check "b above 5n" false (List.assoc "b: 5n" verdicts);
  Alcotest.(check (float 1e-9)) "max_over" 5.5 (Series.max_over curves)

let test_series_rendering () =
  let curves = fake_curves () in
  let table = Series.to_table ~value:`Max curves in
  check "table mentions labels" true
    (Astring_like.contains table "a" && Astring_like.contains table "b");
  check "missing points dashed" true (Astring_like.contains table "-");
  let dat = Series.to_gnuplot ~value:`Max curves in
  check "gnuplot has comment headers" true (Astring_like.contains dat "# a");
  check "gnuplot data line" true (Astring_like.contains dat "20 90.000");
  let path = Filename.temp_file "ncg" ".dat" in
  Series.write_gnuplot path curves;
  let happy = Sys.file_exists path in
  Sys.remove path;
  check "write_gnuplot creates file" true happy

let suite =
  ( "experiments",
    [
      Alcotest.test_case "pool map" `Quick test_pool_map;
      Alcotest.test_case "runner determinism" `Quick
        test_runner_deterministic;
      Alcotest.test_case "runner parallel equivalence" `Quick
        test_runner_parallel_matches_sequential;
      Alcotest.test_case "runner convergence" `Quick test_runner_converges;
      Alcotest.test_case "runner survives a crashing trial" `Quick
        test_runner_survives_crashing_trial;
      Alcotest.test_case "runner time budget" `Quick test_runner_time_budget;
      Alcotest.test_case "runner with auditing" `Quick test_runner_audited;
      Alcotest.test_case "checkpoint resume parity" `Quick
        test_checkpoint_resume_parity;
      Alcotest.test_case "checkpoint outcome roundtrip" `Quick
        test_checkpoint_outcome_roundtrip;
      Alcotest.test_case "checkpoint fingerprint mismatch" `Quick
        test_checkpoint_fingerprint_mismatch;
      Alcotest.test_case "checkpoint torn line" `Quick
        test_checkpoint_torn_line_ignored;
      Alcotest.test_case "checkpoint v1 malformed lines surfaced" `Quick
        test_checkpoint_v1_malformed_lines_surfaced;
      Alcotest.test_case "backoff budget" `Quick test_backoff_budget;
      Alcotest.test_case "timeout retries then quarantine" `Quick
        test_timeout_retries_then_quarantine;
      Alcotest.test_case "flaky trial recovers on retry" `Quick
        test_flaky_trial_recovers_on_retry;
      Alcotest.test_case "no retries is historical behavior" `Quick
        test_no_retries_is_historical_behavior;
      Alcotest.test_case "quarantine reaches incident log" `Quick
        test_quarantine_reaches_incident_log;
      Alcotest.test_case "sweep checkpoint resume" `Quick
        test_sweep_checkpoint_resume;
      Alcotest.test_case "asg sweep structure" `Quick
        test_asg_sweep_structure;
      Alcotest.test_case "gbg sweep structure" `Quick
        test_gbg_sweep_structure;
      Alcotest.test_case "topology settings" `Quick test_topology_settings;
      Alcotest.test_case "topology sweep" `Quick test_topology_sweep_runs;
      Alcotest.test_case "series envelopes" `Quick test_series_envelope;
      Alcotest.test_case "series rendering" `Quick test_series_rendering;
    ] )
