(* Tests for the shadow sentinel: invisibility on a healthy fast path,
   detection of a chaos-broken one, and graceful degradation that keeps
   the trial bit-identical to a pure reference run. *)

open Ncg_graph
open Ncg_game
open Ncg_core
open Ncg_experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gbg n =
  Model.make ~alpha:(Ncg_rational.Q.make n 4) Model.Gbg Model.Sum n

let asg n = Model.make Model.Asg Model.Sum n

let cfg ?sentinel ?(policy = Policy.Max_cost) model =
  Engine.config ?sentinel ~policy ~tie_break:Engine.Prefer_deletion
    ~record_history:true model

let rng seed = Random.State.make [| seed; 0xfade |]

(* Full structural comparison minus the sentinel report: trajectories are
   bit-identical iff every one of these agrees. *)
let same_trajectory (a : Engine.result) (b : Engine.result) =
  a.Engine.reason = b.Engine.reason
  && a.Engine.steps = b.Engine.steps
  && a.Engine.history = b.Engine.history
  && Canonical.key a.Engine.final = Canonical.key b.Engine.final

(* ------------------------------------------------------------------ *)
(* Healthy fast path: the sentinel must be invisible                   *)
(* ------------------------------------------------------------------ *)

let test_every_step_invisible_when_healthy () =
  List.iter
    (fun seed ->
      let model = gbg 12 in
      let g = Gen.random_m_edges (Random.State.make [| seed |]) 12 18 in
      let plain = Engine.run ~rng:(rng seed) (cfg model) g in
      let watched =
        Engine.run ~rng:(rng seed)
          (cfg ~sentinel:Sentinel.Every_step model)
          g
      in
      let oracle =
        Reference.run ~rng:(rng seed)
          (cfg ~sentinel:Sentinel.Every_step model)
          g
      in
      check "watched run equals unwatched run" true
        (same_trajectory plain watched);
      check "watched run equals the reference oracle" true
        (same_trajectory watched oracle);
      check "every step was checked" true
        (watched.Engine.sentinel.Sentinel.checked >= watched.Engine.steps);
      check "no incidents" true
        (watched.Engine.sentinel.Sentinel.incidents = []);
      check "never degraded" true
        (watched.Engine.sentinel.Sentinel.degraded_at = None);
      check "reference reports a clean sentinel" true
        (oracle.Engine.sentinel = Sentinel.clean_report))
    [ 3; 17; 42 ]

let test_sampling_is_trajectory_neutral () =
  let model = asg 14 in
  let g = Gen.random_budget_network (Random.State.make [| 5 |]) 14 2 in
  let plain = Engine.run ~rng:(rng 5) (cfg model) g in
  let sampled =
    Engine.run ~rng:(rng 5) (cfg ~sentinel:(Sentinel.Sampled 0.3) model) g
  in
  check "sampled run equals unwatched run" true
    (same_trajectory plain sampled);
  check "some steps were checked" true
    (sampled.Engine.sentinel.Sentinel.checked > 0);
  check "fewer checks than steps" true
    (sampled.Engine.sentinel.Sentinel.checked < sampled.Engine.steps);
  let off =
    Engine.run ~rng:(rng 5) (cfg ~sentinel:(Sentinel.Sampled 0.0) model) g
  in
  check "rate 0 never checks" true
    (off.Engine.sentinel = Sentinel.clean_report)

(* ------------------------------------------------------------------ *)
(* Chaos-broken fast path: detect, record, degrade — bit-identically   *)
(* ------------------------------------------------------------------ *)

let with_chaos ~after k =
  Response.Fast.chaos_corrupt_best_moves ~after;
  Fun.protect ~finally:Response.Fast.chaos_reset k

let test_divergence_detected_and_degraded () =
  let model = gbg 12 in
  let g = Gen.random_m_edges (Random.State.make [| 9 |]) 12 20 in
  let broken =
    with_chaos ~after:4 (fun () ->
        Engine.run ~rng:(rng 9) (cfg ~sentinel:Sentinel.Every_step model) g)
  in
  let oracle = Reference.run ~rng:(rng 9) (cfg model) g in
  check_int "exactly one incident" 1
    (List.length broken.Engine.sentinel.Sentinel.incidents);
  (match broken.Engine.sentinel.Sentinel.incidents with
  | [ i ] ->
      check "the move-set phase diverged" true
        (match i.Sentinel.phase with
        | Sentinel.Move_set { fast; reference; _ } ->
            not (Sentinel.moves_equal fast reference)
        | Sentinel.Selection _ -> false);
      check "incident carries the corrupted step" true (i.Sentinel.step = 4);
      check "incident fingerprints the state" true
        (String.length i.Sentinel.fingerprint > 0);
      check "incident renders" true
        (String.length (Sentinel.incident_to_string i) > 0)
  | _ -> ());
  check "degraded at the corrupted step" true
    (broken.Engine.sentinel.Sentinel.degraded_at = Some 4);
  check "degraded trial is bit-identical to the pure reference run" true
    (same_trajectory broken oracle);
  check "outcome is flagged as degraded" true
    (Stats.outcome_of_result broken).Stats.degraded

let test_duplicate_corruption_detected () =
  (* the other corruption shape of the hook: a duplicated singleton *)
  let model = asg 10 in
  let g = Gen.random_budget_network (Random.State.make [| 11 |]) 10 2 in
  let oracle = Reference.run ~rng:(rng 11) (cfg model) g in
  let broken =
    with_chaos ~after:0 (fun () ->
        Engine.run ~rng:(rng 11) (cfg ~sentinel:Sentinel.Every_step model) g)
  in
  check "divergence at step 0 detected" true
    (broken.Engine.sentinel.Sentinel.degraded_at = Some 0);
  check "still bit-identical to the reference" true
    (same_trajectory broken oracle)

let test_sentinel_off_misses_the_corruption () =
  (* the contrast case: without the sentinel the corruption goes
     unnoticed — the run completes, reports a clean sentinel, and nobody
     is told.  This is precisely the gap the sentinel closes. *)
  let model = gbg 12 in
  let g = Gen.random_m_edges (Random.State.make [| 9 |]) 12 20 in
  let blind =
    with_chaos ~after:4 (fun () -> Engine.run ~rng:(rng 9) (cfg model) g)
  in
  check "run completes despite the corruption" true
    (match blind.Engine.reason with
    | Engine.Converged | Engine.Step_limit | Engine.Cycle_detected _
    | Engine.Time_limit | Engine.Invariant_violation _ ->
        true);
  check "and reports a clean sentinel" true
    (blind.Engine.sentinel = Sentinel.clean_report)

(* The acceptance scenario: a seeded sweep whose fast path is broken once
   mid-sweep completes, with the statistics reporting exactly one
   degraded trial and every trial converging exactly as a clean sweep
   does. *)
let test_sweep_reports_exactly_one_degraded_trial () =
  let spec sentinel =
    Runner.spec ~sentinel (asg 10) (fun rng ->
        Gen.random_budget_network rng 10 2)
  in
  let clean =
    Runner.run ~domains:1 ~trials:3 (spec Sentinel.Every_step)
  in
  let chaotic =
    with_chaos ~after:0 (fun () ->
        Runner.run ~domains:1 ~trials:3 (spec Sentinel.Every_step))
  in
  check_int "three runs" 3 chaotic.Stats.runs;
  check_int "exactly one degraded trial" 1 chaotic.Stats.degraded;
  check_int "all three still converge" 3 chaotic.Stats.converged;
  check_int "nothing quarantined" 0 chaotic.Stats.quarantined;
  check "statistics otherwise identical to the clean sweep" true
    ({ chaotic with Stats.degraded = 0 } = clean)

(* ------------------------------------------------------------------ *)
(* Sentinel unit behavior                                              *)
(* ------------------------------------------------------------------ *)

let test_due_levels () =
  let srng = Sentinel.make_rng 10 in
  check "off never" false (Sentinel.due Sentinel.Off srng);
  check "every step always" true (Sentinel.due Sentinel.Every_step srng);
  check "rate 0 never" false (Sentinel.due (Sentinel.Sampled 0.0) srng);
  check "rate 1 always" true (Sentinel.due (Sentinel.Sampled 1.0) srng);
  check "negative rate never" false
    (Sentinel.due (Sentinel.Sampled (-0.5)) srng);
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Sentinel.due (Sentinel.Sampled 0.25) srng then incr hits
  done;
  check "a quarter-rate samples near a quarter" true
    (!hits > 150 && !hits < 350)

let test_shadowed_policies () =
  check "max cost shadowed" true (Sentinel.shadows_selection Policy.Max_cost);
  check "round robin shadowed" true
    (Sentinel.shadows_selection Policy.Round_robin);
  check "random shadowed" true
    (Sentinel.shadows_selection Policy.Random_unhappy);
  check "adversarial closures are not re-invoked" false
    (Sentinel.shadows_selection (Policy.Adversarial (fun _ _ -> None)))

let suite =
  ( "sentinel",
    [
      Alcotest.test_case "every-step sentinel invisible when healthy" `Quick
        test_every_step_invisible_when_healthy;
      Alcotest.test_case "sampling is trajectory neutral" `Quick
        test_sampling_is_trajectory_neutral;
      Alcotest.test_case "divergence detected and degraded" `Quick
        test_divergence_detected_and_degraded;
      Alcotest.test_case "duplicate corruption detected" `Quick
        test_duplicate_corruption_detected;
      Alcotest.test_case "sentinel off misses the corruption" `Quick
        test_sentinel_off_misses_the_corruption;
      Alcotest.test_case "sweep reports exactly one degraded trial" `Quick
        test_sweep_reports_exactly_one_degraded_trial;
      Alcotest.test_case "due levels" `Quick test_due_levels;
      Alcotest.test_case "shadowed policies" `Quick test_shadowed_policies;
    ] )
