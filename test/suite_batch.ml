(* Batch differential suite: the lockstep batch engine against solo runs.

   [Engine.run_batch] interleaves B trials of one configuration over a
   shared arena; every trial must be bit-identical — steps, stop reason,
   final network, sentinel report, even per-trial cache stats — to the
   same trial run solo through [Runner.run_trial].  The matrix crosses
   game x policy x tie-break; edge cases pin B=1, mid-batch retirement
   (violation and time limit) without sibling perturbation, pooled-arena
   reuse across successive batches, checkpoint interrupt/resume through
   the batched runner, retry sub-seed stability, and the per-trial RNG
   seeding contract itself. *)
open Ncg_graph
open Ncg_game
open Ncg_core
open Ncg_experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let reason_label = function
  | Engine.Converged -> "converged"
  | Engine.Cycle_detected { first_visit; period } ->
      Printf.sprintf "cycle(first=%d,period=%d)" first_visit period
  | Engine.Step_limit -> "step-limit"
  | Engine.Time_limit -> "time-limit"
  | Engine.Invariant_violation v ->
      Printf.sprintf "violation(%s)" (Audit.kind_label v.Audit.kind)

let same_step (a : Engine.step) (b : Engine.step) =
  a.Engine.index = b.Engine.index
  && a.Engine.move = b.Engine.move
  && a.Engine.effect = b.Engine.effect
  && a.Engine.cost_before = b.Engine.cost_before
  && a.Engine.cost_after = b.Engine.cost_after

(* Field-by-field identity, cache stats included: a pooled, reset cache
   must make the same decisions a fresh one makes. *)
let same_result (a : Engine.result) (b : Engine.result) =
  a.Engine.steps = b.Engine.steps
  && a.Engine.reason = b.Engine.reason
  && List.length a.Engine.history = List.length b.Engine.history
  && List.for_all2 same_step a.Engine.history b.Engine.history
  && Graph.equal a.Engine.final b.Engine.final
  && Canonical.key a.Engine.final = Canonical.key b.Engine.final
  && a.Engine.sentinel = b.Engine.sentinel
  && a.Engine.cache = b.Engine.cache

(* Trial [i]'s batch thunk: the exact solo derivation — [Runner.trial_rng]
   seeds the lane's private stream, which then generates the lane's
   initial network, just as [Runner.run_trial] would. *)
let thunk spec ~seed trial () =
  let rng = Runner.trial_rng spec ~seed ~trial ~attempt:0 in
  (rng, spec.Runner.generate rng)

let assert_batch_equals_solo label spec ~seed ~trials =
  let results =
    Engine.run_batch
      (Runner.engine_config spec ~attempt:0)
      (Array.init trials (thunk spec ~seed))
  in
  check_int (label ^ ": one slot per trial") trials (Array.length results);
  Array.iteri
    (fun i r ->
      match r with
      | Error (exn, _) ->
          Alcotest.failf "%s trial %d raised %s" label i
            (Printexc.to_string exn)
      | Ok r ->
          let solo = Runner.run_trial spec ~seed ~trial:i in
          if not (same_result r solo) then
            Alcotest.failf "%s trial %d diverged: batch %d steps (%s), solo %d steps (%s)"
              label i r.Engine.steps
              (reason_label r.Engine.reason)
              solo.Engine.steps
              (reason_label solo.Engine.reason))
    results

(* ------------------------------------------------------------------ *)
(* The matrix: 5 games x 3 policies x 3 tie-breaks                     *)
(* ------------------------------------------------------------------ *)

let policies =
  [ ("max-cost", Policy.Max_cost);
    ("random-unhappy", Policy.Random_unhappy);
    ("round-robin", Policy.Round_robin) ]

let tie_breaks =
  [ ("uniform", Engine.Uniform);
    ("prefer-deletion", Engine.Prefer_deletion);
    ("first", Engine.First_candidate) ]

(* Initial networks follow each game's paper process; the exponential
   games stay tiny to respect [Response.exhaustive_limit]. *)
let game_size = function
  | Model.Sg | Model.Asg | Model.Gbg -> 10
  | Model.Bg | Model.Bilateral -> 5

let game_generate game rng =
  match game with
  | Model.Sg -> Gen.random_connected rng 10 0.2
  | Model.Asg -> Gen.random_budget_network rng 10 2
  | Model.Gbg -> Gen.random_m_edges rng 10 14
  | Model.Bg | Model.Bilateral -> Gen.random_connected rng 5 0.3

let game_spec ?(policy = Policy.Max_cost) ?(tie_break = Engine.Uniform) game =
  let model =
    Model.make
      ~alpha:(Ncg_rational.Q.of_int 3)
      game Model.Sum (game_size game)
  in
  Runner.spec ~policy ~tie_break ~max_steps:400 model (game_generate game)

let matrix_case game () =
  let configs = ref 0 in
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun (tname, tie_break) ->
          let spec = game_spec ~policy ~tie_break game in
          List.iter
            (fun seed ->
              assert_batch_equals_solo
                (Printf.sprintf "%s/%s/%s"
                   (Model.game_name
                      (Model.make ~alpha:(Ncg_rational.Q.of_int 3) game
                         Model.Sum (game_size game)))
                   pname tname)
                spec ~seed ~trials:4;
              incr configs)
            [ 1; 2 ])
        tie_breaks)
    policies;
  check_int "configs per game in the matrix" 18 !configs

(* ------------------------------------------------------------------ *)
(* QCheck: random (game, policy, seed, B <= 8) batch = B solo trials   *)
(* ------------------------------------------------------------------ *)

let games = [| Model.Sg; Model.Asg; Model.Gbg; Model.Bg; Model.Bilateral |]
let policy_arr = Array.of_list policies

let arb_batch_case =
  QCheck.make
    ~print:(fun (gi, pi, seed, b) ->
      Printf.sprintf "game=%d policy=%s seed=%d B=%d" gi
        (fst policy_arr.(pi)) seed b)
    QCheck.Gen.(
      quad (int_bound 4) (int_bound 2) (int_bound 100_000) (int_range 1 8))

let prop_batch_equals_solo =
  QCheck.Test.make ~count:25
    ~name:"run_batch = B independent run_trial calls, field by field"
    arb_batch_case
    (fun (gi, pi, seed, b) ->
      let spec = game_spec ~policy:(snd policy_arr.(pi)) games.(gi) in
      let results =
        Engine.run_batch
          (Runner.engine_config spec ~attempt:0)
          (Array.init b (thunk spec ~seed))
      in
      Array.length results = b
      && Array.for_all Result.is_ok results
      && Array.for_all
           (fun (i, r) ->
             match r with
             | Ok r -> same_result r (Runner.run_trial spec ~seed ~trial:i)
             | Error _ -> false)
           (Array.mapi (fun i r -> (i, r)) results))

(* ------------------------------------------------------------------ *)
(* The per-trial RNG seeding contract                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_contract () =
  let spec = game_spec Model.Gbg in
  let n = game_size Model.Gbg in
  (* attempt 0 is the historical (seed, trial, n) triple — a state-split
     private stream, not draws off a shared sweep stream *)
  let batch_lane = Runner.trial_rng spec ~seed:42 ~trial:3 ~attempt:0 in
  let solo = Random.State.make [| 42; 3; n |] in
  for _ = 1 to 32 do
    check_int "lane stream = solo (seed, trial, n) stream"
      (Random.State.int solo 1_000_000)
      (Random.State.int batch_lane 1_000_000)
  done;
  (* the retry sub-seed appends the attempt to the triple; it cannot
     depend on how many draws attempt 0 (or any sibling lane) made *)
  let attempt0 = Runner.trial_rng spec ~seed:42 ~trial:3 ~attempt:0 in
  for _ = 1 to 17 do
    ignore (Random.State.int attempt0 99)
  done;
  let retry = Runner.trial_rng spec ~seed:42 ~trial:3 ~attempt:1 in
  let expected = Random.State.make [| 42; 3; n; 1 |] in
  for _ = 1 to 32 do
    check_int "retry sub-seed stable under sibling draws"
      (Random.State.int expected 1_000_000)
      (Random.State.int retry 1_000_000)
  done;
  (* lane independence end to end: a shard of the batched runner returns
     exactly the corresponding slice of the full batched run *)
  let full = Runner.run_outcomes ~seed:9 ~trials:10 spec in
  let shard = Runner.run_outcomes ~seed:9 ~trials:10 ~range:(4, 9) spec in
  check "shard outcomes = slice of the full run" true
    (shard = List.filteri (fun i _ -> i >= 4 && i < 9) full)

(* ------------------------------------------------------------------ *)
(* Edge cases: B=1, mid-batch retirement, arena reuse                  *)
(* ------------------------------------------------------------------ *)

let test_b1_equals_solo () =
  List.iter
    (fun game ->
      let spec = game_spec game in
      assert_batch_equals_solo "B=1" spec ~seed:11 ~trials:1)
    [ Model.Sg; Model.Asg; Model.Gbg ]

let test_violation_retires_mid_batch () =
  (* Lane 1 gets a corrupted instance (ownerless edge under ASG, audited
     every step): it must retire with a typed violation while lanes 0 and
     2 finish bit-identical to their solo runs. *)
  let n = 10 in
  let model =
    Model.make ~alpha:(Ncg_rational.Q.of_int 3) Model.Asg Model.Sum n
  in
  let spec =
    Runner.spec ~audit:Audit.Every_step ~max_steps:400 model (fun rng ->
        Gen.random_budget_network rng n 2)
  in
  let cfg = Runner.engine_config spec ~attempt:0 in
  let seed = 77 in
  let corrupt = 1 in
  let corrupted_graph trial =
    let rng = Runner.trial_rng spec ~seed ~trial ~attempt:0 in
    let g = spec.Runner.generate rng in
    (match Graph.edges g with
    | (u, v, _) :: _ ->
        Graph.Unsafe.set_owner_bit g u v false;
        Graph.Unsafe.set_owner_bit g v u false
    | [] -> ());
    (rng, g)
  in
  let results =
    Engine.run_batch cfg
      (Array.init 3 (fun i ->
           if i = corrupt then fun () -> corrupted_graph i
           else thunk spec ~seed i))
  in
  (match results.(corrupt) with
  | Ok r ->
      check "corrupt lane retires with a typed violation" true
        (match r.Engine.reason with
        | Engine.Invariant_violation _ -> true
        | _ -> false);
      (* and is itself bit-identical to the same corrupted run solo *)
      let rng, g = corrupted_graph corrupt in
      check "corrupt lane = solo corrupted run" true
        (same_result r (Engine.run ~rng cfg g))
  | Error (exn, _) ->
      Alcotest.failf "corrupt lane raised %s" (Printexc.to_string exn));
  List.iter
    (fun i ->
      match results.(i) with
      | Ok r ->
          check
            (Printf.sprintf "sibling lane %d unperturbed" i)
            true
            (same_result r (Runner.run_trial spec ~seed ~trial:i))
      | Error (exn, _) ->
          Alcotest.failf "sibling lane %d raised %s" i
            (Printexc.to_string exn))
    [ 0; 2 ]

let test_time_limit_retires_mid_batch () =
  (* A budget strictly in the past stops every lane at step 0 with
     [Time_limit] — deterministically, so batch and solo agree exactly.
     (A 0.0 budget would be a coin flip: the deadline check is a strict
     comparison, so a first step landing in the same clock microsecond
     as the start still executes.) *)
  let spec0 = game_spec Model.Gbg in
  let spec =
    Runner.spec ~policy:spec0.Runner.policy ~max_steps:400
      ~time_budget:(-1.0) spec0.Runner.model spec0.Runner.generate
  in
  let results =
    Engine.run_batch
      (Runner.engine_config spec ~attempt:0)
      (Array.init 4 (thunk spec ~seed:21))
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok r ->
          check "expired budget = Time_limit at step 0" true
            (r.Engine.reason = Engine.Time_limit && r.Engine.steps = 0);
          check "timed-out lane = solo timed-out run" true
            (same_result r (Runner.run_trial spec ~seed:21 ~trial:i))
      | Error (exn, _) ->
          Alcotest.failf "lane %d raised %s" i (Printexc.to_string exn))
    results

let test_arena_reuse_and_accounting () =
  (* Two successive batches through one resident stream: pooled caches,
     witnesses and seen-tables are reset between trials, so the second
     batch is still bit-identical to solo — and the arena's books balance
     against the per-trial results, while [Distcache.totals] counts each
     trial exactly once (no double-counting under batching). *)
  Engine.Arena.reset_totals ();
  Distcache.reset_totals ();
  let spec = game_spec Model.Gbg in
  let stream = Batch.create ~batch:4 (Runner.engine_config spec ~attempt:0) in
  check_int "stream batch width" 4 (Batch.batch_size stream);
  let run lo count =
    Batch.run stream (Array.init count (fun i -> thunk spec ~seed:3 (lo + i)))
  in
  let r1 = run 0 6 and r2 = run 6 6 in
  (* snapshot before the solo comparison runs below add their own trials *)
  let batched_totals = Distcache.totals () in
  let all = Array.append r1 r2 in
  let cache_sum = ref Distcache.zero_stats in
  Array.iteri
    (fun i r ->
      match r with
      | Ok r ->
          check
            (Printf.sprintf "streamed trial %d = solo" i)
            true
            (same_result r (Runner.run_trial spec ~seed:3 ~trial:i));
          cache_sum :=
            {
              Distcache.kept = !cache_sum.Distcache.kept + r.Engine.cache.Distcache.kept;
              repaired = !cache_sum.Distcache.repaired + r.Engine.cache.Distcache.repaired;
              rebuilt = !cache_sum.Distcache.rebuilt + r.Engine.cache.Distcache.rebuilt;
              fills = !cache_sum.Distcache.fills + r.Engine.cache.Distcache.fills;
              evicted = !cache_sum.Distcache.evicted + r.Engine.cache.Distcache.evicted;
            }
      | Error (exn, _) ->
          Alcotest.failf "streamed trial %d raised %s" i
            (Printexc.to_string exn))
    all;
  let arena = Batch.arena stream in
  check_int "arena retired every trial" 12 (Engine.Arena.trials arena);
  check "arena cache stats = sum of per-trial stats" true
    (Engine.Arena.cache_stats arena = !cache_sum);
  let t = Engine.Arena.totals () in
  check_int "process totals: one arena" 1 t.Engine.Arena.arenas;
  check_int "process totals: twelve batched trials" 12
    t.Engine.Arena.batched_trials;
  check "process totals: batched cache decisions" true
    (t.Engine.Arena.cache = !cache_sum);
  (* every trial here was batched, so the per-trial totals must equal the
     arena totals exactly — if batching added its stats to
     [Distcache.totals] too, this would read double *)
  check "Distcache totals count each trial once" true
    (batched_totals = !cache_sum)

(* ------------------------------------------------------------------ *)
(* The batched runner: interrupt/resume and retry sub-seeds            *)
(* ------------------------------------------------------------------ *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "ncg_batch_ckpt" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_interrupt_resume_parity () =
  (* A stop request lands mid-batch (after the first recorded checkpoint
     group); the resumed run must reproduce the uninterrupted outcomes
     bit for bit — the same guarantee suite_fleet checks with real
     SIGKILLs through the CLI, here at the runner layer. *)
  with_temp_checkpoint (fun path ->
      let spec () = game_spec Model.Gbg in
      let uninterrupted = Runner.run_outcomes ~trials:20 (spec ()) in
      Runner.reset_stop ();
      let cp = Checkpoint.open_ ~fingerprint:"batch" path in
      let fired = ref 0 in
      (match
         Runner.run_outcomes ~checkpoint:cp ~key:"b" ~trials:20
           ~on_batch:(fun () ->
             incr fired;
             if !fired = 1 then Runner.request_stop ())
           (spec ())
       with
      | _ -> Alcotest.fail "expected Interrupted"
      | exception Runner.Interrupted -> ());
      Checkpoint.close cp;
      Runner.reset_stop ();
      let cp = Checkpoint.open_ ~resume:true ~fingerprint:"batch" path in
      let done_before = List.length (Checkpoint.completed cp ~key:"b") in
      check "interrupt left a strict prefix on disk" true
        (done_before > 0 && done_before < 20);
      let resumed =
        Runner.run_outcomes ~checkpoint:cp ~key:"b" ~trials:20 (spec ())
      in
      Checkpoint.close cp;
      check "resumed outcomes bit-identical to uninterrupted" true
        (resumed = uninterrupted))

let test_retry_subseed_stability () =
  (* Trials whose generator raises are retried on the appended-attempt
     sub-seed; the attempt that finally succeeds inside the batched sweep
     must be byte-identical to the same attempt run solo. *)
  let model = Model.make ~alpha:(Ncg_rational.Q.of_int 3) Model.Gbg Model.Sum 8 in
  let generate rng =
    let g = Gen.random_m_edges rng 8 10 in
    if Random.State.int rng 4 = 0 then failwith "injected fault";
    g
  in
  let spec = Runner.spec ~max_steps:400 ~max_retries:2 model generate in
  let seed = 5 in
  let outcomes = Runner.run_outcomes ~seed ~trials:12 spec in
  check_int "every trial has an outcome" 12 (List.length outcomes);
  check "the fault injection actually fired" true
    (List.exists (fun o -> o.Stats.attempts > 1) outcomes);
  List.iteri
    (fun trial o ->
      match o.Stats.verdict with
      | Stats.Finished { reason; steps } ->
          let attempt = o.Stats.attempts - 1 in
          let solo = Runner.run_attempt spec ~seed ~trial ~attempt in
          check "winning attempt reproduces solo on its sub-seed" true
            (solo.Engine.reason = reason && solo.Engine.steps = steps)
      | Stats.Crashed _ ->
          check "exhausted trials are quarantined" true o.Stats.quarantined)
    outcomes;
  check "batched retries are deterministic" true
    (Runner.run_outcomes ~seed ~trials:12 spec = outcomes)

let suite =
  ( "batch",
    [
      Alcotest.test_case "matrix: SG" `Quick (matrix_case Model.Sg);
      Alcotest.test_case "matrix: ASG" `Quick (matrix_case Model.Asg);
      Alcotest.test_case "matrix: GBG" `Quick (matrix_case Model.Gbg);
      Alcotest.test_case "matrix: BG" `Quick (matrix_case Model.Bg);
      Alcotest.test_case "matrix: bilateral" `Quick
        (matrix_case Model.Bilateral);
      Alcotest.test_case "RNG seeding contract" `Quick test_rng_contract;
      Alcotest.test_case "B=1 equals solo" `Quick test_b1_equals_solo;
      Alcotest.test_case "violation retires mid-batch" `Quick
        test_violation_retires_mid_batch;
      Alcotest.test_case "time limit retires mid-batch" `Quick
        test_time_limit_retires_mid_batch;
      Alcotest.test_case "arena reuse and accounting" `Quick
        test_arena_reuse_and_accounting;
      Alcotest.test_case "interrupt/resume mid-batch" `Quick
        test_interrupt_resume_parity;
      Alcotest.test_case "retry sub-seed stability" `Quick
        test_retry_subseed_stability;
    ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_batch_equals_solo ] )
