(* Tests for the ncg_graph substrate: structure, distances, generators,
   isomorphism, canonical encodings, host graphs. *)
open Ncg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph structure                                                     *)
(* ------------------------------------------------------------------ *)

let test_build () =
  let g = Graph.create 4 in
  check_int "no vertices' edges yet" 0 (Graph.m g);
  Graph.add_edge g ~owner:0 0 1;
  Graph.add_edge g ~owner:2 1 2;
  check_int "m" 2 (Graph.m g);
  check_int "n" 4 (Graph.n g);
  check "has 0-1" true (Graph.has_edge g 0 1);
  check "has 1-0 (symmetric)" true (Graph.has_edge g 1 0);
  check "no 0-2" false (Graph.has_edge g 0 2);
  check_int "owner of 0-1" 0 (Graph.owner g 0 1);
  check_int "owner of 2-1" 2 (Graph.owner g 1 2);
  check "owns" true (Graph.owns g 2 1);
  check "not owns" false (Graph.owns g 1 2);
  check_int "degree 1" 2 (Graph.degree g 1);
  check_int "owned degree 1" 0 (Graph.owned_degree g 1);
  check_int "owned degree 2" 1 (Graph.owned_degree g 2)

let test_build_errors () =
  let g = Graph.create 3 in
  Graph.add_edge g ~owner:0 0 1;
  let raises name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "self loop" (fun () -> Graph.add_edge g ~owner:0 0 0);
  raises "duplicate" (fun () -> Graph.add_edge g ~owner:1 1 0);
  raises "foreign owner" (fun () -> Graph.add_edge g ~owner:0 1 2);
  raises "out of range" (fun () -> Graph.add_edge g ~owner:5 5 1);
  raises "remove absent" (fun () -> Graph.remove_edge g 1 2);
  raises "owner of absent" (fun () -> ignore (Graph.owner g 1 2))

let test_remove () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Graph.remove_edge g 1 0;
  check "removed" false (Graph.has_edge g 0 1);
  check_int "m after removal" 1 (Graph.m g);
  check_int "degree drops" 1 (Graph.degree g 1);
  Graph.add_edge g ~owner:1 1 0;
  check_int "owner can change on re-add" 1 (Graph.owner g 0 1)

let test_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  Graph.add_edge g ~owner:1 1 2;
  check "copy unaffected" false (Graph.has_edge h 1 2);
  check "original has it" true (Graph.has_edge g 1 2)

let test_edges_and_equal () =
  let g = Graph.of_edges 4 [ (2, 1); (0, 3) ] in
  Alcotest.(check (list (triple int int int)))
    "edges sorted with owners" [ (0, 3, 0); (1, 2, 2) ] (Graph.edges g);
  let h = Graph.of_edges 4 [ (0, 3); (2, 1) ] in
  check "equal regardless of insertion order" true (Graph.equal g h);
  let k = Graph.of_edges 4 [ (3, 0); (2, 1) ] in
  check "ownership matters for equal" false (Graph.equal g k)

let test_of_unowned () =
  let g = Graph.of_unowned_edges 3 [ (2, 0) ] in
  check_int "owner is min endpoint" 0 (Graph.owner g 0 2)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_distances_path () =
  let g = Gen.path 5 in
  let d = Paths.distances g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] d;
  check_int "pairwise" 3 (Paths.distance g 1 4);
  let p = Paths.profile g 0 in
  check_int "profile sum" 10 p.Paths.sum;
  check_int "profile ecc" 4 p.Paths.ecc;
  check_int "profile reached" 5 p.Paths.reached

let test_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  check "not connected" false (Paths.is_connected g);
  check_int "unreachable is -1" (-1) (Paths.distance g 0 3);
  check "no diameter" true (Paths.diameter g = None);
  check "no eccentricities" true (Paths.eccentricities g = None);
  check_int "two components of sizes 2,1,1" 3
    (List.length (Paths.components g));
  Alcotest.(check (list (list int)))
    "components content"
    [ [ 0; 1 ]; [ 2 ]; [ 3 ] ]
    (Paths.components g)

let test_center_radius () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "path center" [ 2 ] (Paths.center g);
  check "radius" true (Paths.radius g = Some 2);
  check "diameter" true (Paths.diameter g = Some 4);
  let s = Gen.star 6 in
  Alcotest.(check (list int)) "star center" [ 0 ] (Paths.center s);
  check "star diameter 2" true (Paths.diameter s = Some 2)

let test_trivial_graphs () =
  let g1 = Graph.create 1 in
  check "singleton connected" true (Paths.is_connected g1);
  check "singleton diameter 0" true (Paths.diameter g1 = Some 0);
  let g0 = Graph.create 0 in
  check "empty connected" true (Paths.is_connected g0)

let test_workspace_reuse () =
  let ws = Paths.Workspace.create 10 in
  let g = Gen.cycle 6 in
  let p1 = Paths.Workspace.profile ws g 0 in
  let p2 = Paths.Workspace.profile ws g 3 in
  check_int "cycle ecc from 0" 3 p1.Paths.ecc;
  check_int "cycle ecc from 3" 3 p2.Paths.ecc;
  check_int "cycle sum" (1 + 2 + 3 + 2 + 1) p1.Paths.sum;
  (* restricted BFS: remove vertex 0 from a cycle -> path *)
  let p3 = Paths.Workspace.profile_within ws g 3 (fun v -> v <> 0) in
  check_int "restricted reach" 5 p3.Paths.reached;
  check_int "restricted ecc" 2 p3.Paths.ecc

let test_bounded_profile () =
  let ws = Paths.Workspace.create 10 in
  let g = Gen.path 6 in
  (* from vertex 0: sum = 1+2+3+4+5 = 15, ecc = 5 *)
  let full = Paths.Workspace.profile ws g 0 in
  check "tight sum cutoff completes" true
    (Paths.Workspace.profile_bounded ws g 0 (Paths.Workspace.Sum_at_most 15)
    = Some full);
  check "sum cutoff one short aborts" true
    (Paths.Workspace.profile_bounded ws g 0 (Paths.Workspace.Sum_at_most 14)
    = None);
  check "tight ecc cutoff completes" true
    (Paths.Workspace.profile_bounded ws g 0 (Paths.Workspace.Ecc_at_most 5)
    = Some full);
  check "ecc cutoff one short aborts" true
    (Paths.Workspace.profile_bounded ws g 0 (Paths.Workspace.Ecc_at_most 4)
    = None);
  check "negative cutoff aborts even with sum 0" true
    (Paths.Workspace.profile_bounded ws (Graph.create 1) 0
       (Paths.Workspace.Sum_at_most (-1))
    = None);
  (* a disconnected source can complete within the cutoff; the caller sees
     the disconnection through [reached] *)
  let iso = Graph.of_edges 4 [ (1, 2); (2, 3) ] in
  (match
     Paths.Workspace.profile_bounded ws iso 0 (Paths.Workspace.Sum_at_most 99)
   with
  | Some p -> check_int "lone source reaches itself" 1 p.Paths.reached
  | None -> Alcotest.fail "cutoff 99 cannot be exceeded by sum 0");
  (* workspace survives an aborted scan: the next query is unpolluted *)
  ignore
    (Paths.Workspace.profile_bounded ws g 0 (Paths.Workspace.Sum_at_most 3));
  check "clean state after abort" true
    (Paths.Workspace.profile ws g 0 = full)

let test_workspace_distances () =
  let ws = Paths.Workspace.create 10 in
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0) ] in
  let d = Paths.Workspace.distances ws g 0 in
  check "workspace distances match Paths.distances" true
    (d = Paths.distances g 0);
  check_int "unreachable is -1" (-1) d.(4);
  (* fresh array each call: mutating one result must not leak *)
  d.(1) <- 99;
  check "results are independent arrays" true
    (Paths.Workspace.distances ws g 0 = Paths.distances g 0)

(* Reference all-pairs via Floyd-Warshall for property testing. *)
let floyd g =
  let n = Graph.n g in
  let inf = 1_000_000 in
  let d = Array.init n (fun _ -> Array.make n inf) in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges
    (fun u v _ ->
      d.(u).(v) <- 1;
      d.(v).(u) <- 1)
    g;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  Array.map (Array.map (fun x -> if x >= inf then -1 else x)) d

let arb_graph =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%.2f" seed n p)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 14)
        (map (fun x -> float_of_int x /. 100.0) (int_bound 40)))

let graph_of (seed, n, p) =
  let rng = Random.State.make [| seed |] in
  Gen.random_connected rng n p

let prop name f = QCheck.Test.make ~count:150 ~name arb_graph f

let path_properties =
  [
    prop "BFS agrees with Floyd-Warshall" (fun params ->
        let g = graph_of params in
        let reference = floyd g in
        List.for_all
          (fun u -> Paths.distances g u = reference.(u))
          (Graph.vertices g));
    prop "profile consistent with distances" (fun params ->
        let g = graph_of params in
        List.for_all
          (fun u ->
            let d = Paths.distances g u in
            let p = Paths.profile g u in
            let finite = Array.to_list d |> List.filter (fun x -> x >= 0) in
            p.Paths.sum = List.fold_left ( + ) 0 finite
            && p.Paths.ecc = List.fold_left max 0 finite
            && p.Paths.reached = List.length finite)
          (Graph.vertices g));
    prop "diameter = max eccentricity" (fun params ->
        let g = graph_of params in
        match (Paths.diameter g, Paths.eccentricities g) with
        | Some d, Some ecc -> d = Array.fold_left max 0 ecc
        | None, None -> true
        | Some _, None | None, Some _ -> false);
    prop "radius <= diameter <= 2 radius" (fun params ->
        let g = graph_of params in
        match (Paths.radius g, Paths.diameter g) with
        | Some r, Some d -> r <= d && d <= 2 * r
        | _, _ -> false);
    prop "bounded profile = exact profile iff within cutoff" (fun params ->
        let g = graph_of params in
        let ws = Paths.Workspace.create (Graph.n g) in
        List.for_all
          (fun u ->
            let p = Paths.profile g u in
            (* probe cutoffs straddling the true value in both modes *)
            List.for_all
              (fun (bound, within) ->
                let got = Paths.Workspace.profile_bounded ws g u bound in
                if within then got = Some p else got = None)
              [
                (Paths.Workspace.Sum_at_most p.Paths.sum, true);
                (Paths.Workspace.Sum_at_most (p.Paths.sum - 1), false);
                (Paths.Workspace.Ecc_at_most p.Paths.ecc, true);
                (* ecc 0 makes this cutoff negative, which also aborts *)
                (Paths.Workspace.Ecc_at_most (p.Paths.ecc - 1), false);
              ])
          (Graph.vertices g));
    prop "workspace distances = Paths.distances" (fun params ->
        let g = graph_of params in
        let ws = Paths.Workspace.create (Graph.n g) in
        List.for_all
          (fun u -> Paths.Workspace.distances ws g u = Paths.distances g u)
          (Graph.vertices g));
  ]

(* ------------------------------------------------------------------ *)
(* Tree                                                                *)
(* ------------------------------------------------------------------ *)

let test_tree_predicates () =
  check "path is tree" true (Tree.is_tree (Gen.path 6));
  check "cycle not tree" false (Tree.is_tree (Gen.cycle 6));
  check "star is star" true (Tree.is_star (Gen.star 6));
  check "path 3 is star" true (Tree.is_star (Gen.path 3));
  check "path 4 not star" false (Tree.is_star (Gen.path 4));
  check "path 4 is double star" true (Tree.is_double_star (Gen.path 4));
  check "double star" true (Tree.is_double_star (Gen.double_star 2 3));
  check "star not double star" false (Tree.is_double_star (Gen.star 6));
  check "path 6 not double star" false (Tree.is_double_star (Gen.path 6));
  check "forest" true
    (Tree.is_forest (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  check "cycle not forest" false (Tree.is_forest (Gen.cycle 4));
  Alcotest.(check (list int)) "path leaves" [ 0; 4 ] (Tree.leaves (Gen.path 5))

let test_bridges () =
  let g = Gen.cycle 4 in
  Graph.add_edge g ~owner:0 0 2;
  check "cycle edge not bridge" true (Tree.on_cycle g 0 1);
  let t = Gen.path 4 in
  check "tree edge is bridge" false (Tree.on_cycle t 1 2)

let test_paths_between () =
  let g = Gen.path 5 in
  Alcotest.(check (option (list int)))
    "unique tree path" (Some [ 1; 2; 3 ]) (Tree.path_between g 1 3);
  let d = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check "no path across components" true (Tree.path_between d 0 3 = None);
  check_int "longest path length" 4
    (Tree.longest_path_length (Gen.path 5) 0);
  Alcotest.(check (list int))
    "longest path targets" [ 0; 4 ]
    (Tree.longest_path_targets (Gen.path 5) 2)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let arb_seed_n =
  QCheck.make
    ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 2 40))

let gen_properties =
  [
    QCheck.Test.make ~count:200 ~name:"random_tree is a tree" arb_seed_n
      (fun (s, n) ->
        Tree.is_tree (Gen.random_tree (Random.State.make [| s |]) n));
    QCheck.Test.make ~count:150 ~name:"budget network: connected, owners at k"
      (QCheck.pair arb_seed_n (QCheck.int_range 1 4))
      (fun ((s, n), k) ->
        let n = max n (2 * k + 2) in
        let g = Gen.random_budget_network (Random.State.make [| s |]) n k in
        Paths.is_connected g
        && List.for_all
             (fun v ->
               Graph.owned_degree g v = k || Graph.degree g v = n - 1)
             (Graph.vertices g));
    QCheck.Test.make ~count:150 ~name:"random_m_edges: exact edge count"
      (QCheck.pair arb_seed_n (QCheck.int_range 0 30))
      (fun ((s, n), extra) ->
        let m = min (n - 1 + extra) (n * (n - 1) / 2) in
        let g = Gen.random_m_edges (Random.State.make [| s |]) n m in
        Graph.m g = m && Paths.is_connected g);
    QCheck.Test.make ~count:100 ~name:"random_line is a path" arb_seed_n
      (fun (s, n) ->
        let g = Gen.random_line (Random.State.make [| s |]) n in
        Tree.is_tree g && Paths.diameter g = Some (n - 1));
  ]

let test_gen_shapes () =
  check_int "cycle edges" 5 (Graph.m (Gen.cycle 5));
  check_int "complete edges" 10 (Graph.m (Gen.complete 5));
  check_int "double star size" 7 (Graph.n (Gen.double_star 2 3));
  (* directed line ownership forms a directed path *)
  let dl = Gen.directed_line 5 in
  check "dl ownership" true
    (List.for_all (fun i -> Graph.owns dl i (i + 1)) [ 0; 1; 2; 3 ]);
  check "budget=1 on dl-like nets" true
    (let g = Gen.random_budget_network (Random.State.make [| 5 |]) 12 1 in
     Graph.m g = 12)

(* ------------------------------------------------------------------ *)
(* Iso / Canonical / Host                                              *)
(* ------------------------------------------------------------------ *)

let shuffle_graph seed g =
  let n = Graph.n g in
  let rng = Random.State.make [| seed |] in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  (perm, Iso.apply g perm)

let iso_properties =
  [
    QCheck.Test.make ~count:100 ~name:"graph iso to shuffled self" arb_graph
      (fun params ->
        let g = graph_of params in
        let _, h = shuffle_graph 17 g in
        Iso.equal g h);
    QCheck.Test.make ~count:100 ~name:"found mapping is an isomorphism"
      arb_graph (fun params ->
        let g = graph_of params in
        let _, h = shuffle_graph 23 g in
        match Iso.find g h with
        | None -> false
        | Some f -> Graph.equal (Iso.apply g f) h);
    QCheck.Test.make ~count:100 ~name:"canonical key equal iff same state"
      arb_graph (fun params ->
        let g = graph_of params in
        let h = Graph.copy g in
        Canonical.key g = Canonical.key h
        && Canonical.hash g = Canonical.hash h);
  ]

let test_iso_basics () =
  let p4 = Gen.path 4 and s4 = Gen.star 4 in
  check "path4 not iso star4" false (Iso.equal p4 s4);
  check "different sizes" false (Iso.equal (Gen.path 3) (Gen.path 4));
  (* ownership-awareness *)
  let g1 = Graph.of_edges 2 [ (0, 1) ] in
  let g2 = Graph.of_edges 2 [ (1, 0) ] in
  check "2 vertices: owner flip still iso (relabel)" true (Iso.equal g1 g2);
  let h1 = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let h2 = Graph.of_edges 3 [ (0, 1); (2, 1) ] in
  (* h1's middle owns one edge; h2's middle owns none *)
  check "ownership distinguishes" false (Iso.equal h1 h2);
  check "ignored when asked" true (Iso.equal ~respect_ownership:false h1 h2);
  check "identity automorphism" true
    (Iso.is_automorphism h1 [| 0; 1; 2 |]);
  check "path flip automorphism needs ownership flip" false
    (Iso.is_automorphism h1 [| 2; 1; 0 |]);
  check "path flip ok without ownership" true
    (Iso.is_automorphism ~respect_ownership:false h1 [| 2; 1; 0 |])

let test_canonical () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.of_edges 3 [ (1, 0) ] in
  check "key differs on ownership" true (Canonical.key g <> Canonical.key h);
  check "unowned key ignores ownership" true
    (Canonical.unowned_key g = Canonical.unowned_key h)

let test_normal_form () =
  (* the normal form is a true canonical representative: relabeling an
     instance never changes it *)
  let rng = Random.State.make [| 71 |] in
  for seed = 0 to 19 do
    let g = Gen.random_connected rng (6 + (seed mod 7)) 0.3 in
    let _, h = shuffle_graph (100 + seed) g in
    check "normal forms of isomorphic graphs equal" true
      (Graph.equal (Canonical.normal_form g) (Canonical.normal_form h));
    check "iso_key agrees" true (Canonical.iso_key g = Canonical.iso_key h)
  done;
  (* and non-isomorphic graphs of the same size keep distinct keys *)
  check "path vs star distinct" true
    (Canonical.iso_key (Gen.path 5) <> Canonical.iso_key (Gen.star 5));
  (* the result is isomorphic to the input, not just equal-keyed *)
  let g = Gen.random_connected rng 9 0.3 in
  check "normal form isomorphic to input" true
    (Iso.equal g (Canonical.normal_form g));
  (* ownership split: these are edge-isomorphic but not owner-isomorphic *)
  let h1 = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let h2 = Graph.of_edges 3 [ (0, 1); (2, 1) ] in
  check "owner-respecting keys differ" true
    (Canonical.iso_key h1 <> Canonical.iso_key h2);
  check "unowned keys agree" true
    (Canonical.iso_key ~respect_ownership:false h1
    = Canonical.iso_key ~respect_ownership:false h2)

let test_normal_form_symmetric () =
  (* automorphism pruning (orbit closure at the root, backjumping below)
     keeps maximally symmetric families inside the default budget: a
     naive search would visit 40! leaves on the star *)
  let s = Gen.star 40 in
  let _, s' = shuffle_graph 3 s in
  check "star40 canonicalizes within default budget" true
    (Canonical.iso_key s = Canonical.iso_key s');
  let c = Gen.cycle 40 in
  let _, c' = shuffle_graph 5 c in
  check "cycle40 canonicalizes within default budget" true
    (Canonical.iso_key c = Canonical.iso_key c');
  (* a starved budget raises instead of stalling, so cache layers can
     fall back to not deduplicating *)
  check "tiny budget raises Budget_exceeded" true
    (match Canonical.normal_form ~budget:10 (Gen.star 30) with
    | exception Canonical.Budget_exceeded -> true
    | _ -> false)

let test_host () =
  let h = Host.complete 4 in
  check "complete allows" true (Host.allows h 0 3);
  check "never self" false (Host.allows h 2 2);
  check "is complete" true (Host.is_complete h);
  let r = Host.without 4 [ (0, 3) ] in
  check "without blocks" false (Host.allows r 0 3);
  check "without blocks symmetric" false (Host.allows r 3 0);
  check "others fine" true (Host.allows r 0 2);
  check "not complete" false (Host.is_complete r);
  let g = Gen.path 4 in
  check "subgraph ok" true (Host.subgraph_ok r g);
  let bad = Graph.of_edges 4 [ (0, 3) ] in
  check "subgraph violation" false (Host.subgraph_ok r bad);
  let hg = Host.of_graph (Gen.path 4) in
  check "of_graph allows path edges" true (Host.allows hg 1 2);
  check "of_graph blocks others" false (Host.allows hg 0 2)

let test_dot () =
  let g = Graph.of_edges 3 [ (0, 1); (2, 1) ] in
  let dot = Dot.to_dot ~labels:(fun v -> String.make 1 "abc".[v]) g in
  check "mentions arrow 0->1" true
    (Astring_like.contains dot "0 -> 1");
  check "mentions arrow 2->1" true (Astring_like.contains dot "2 -> 1")

let suite =
  ( "graph",
    [
      Alcotest.test_case "build" `Quick test_build;
      Alcotest.test_case "build errors" `Quick test_build_errors;
      Alcotest.test_case "remove" `Quick test_remove;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "edges and equality" `Quick test_edges_and_equal;
      Alcotest.test_case "unowned construction" `Quick test_of_unowned;
      Alcotest.test_case "path distances" `Quick test_distances_path;
      Alcotest.test_case "disconnected graphs" `Quick test_disconnected;
      Alcotest.test_case "center and radius" `Quick test_center_radius;
      Alcotest.test_case "trivial graphs" `Quick test_trivial_graphs;
      Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
      Alcotest.test_case "bounded profile" `Quick test_bounded_profile;
      Alcotest.test_case "workspace distances" `Quick
        test_workspace_distances;
      Alcotest.test_case "tree predicates" `Quick test_tree_predicates;
      Alcotest.test_case "bridges" `Quick test_bridges;
      Alcotest.test_case "paths between" `Quick test_paths_between;
      Alcotest.test_case "generator shapes" `Quick test_gen_shapes;
      Alcotest.test_case "iso basics" `Quick test_iso_basics;
      Alcotest.test_case "canonical keys" `Quick test_canonical;
      Alcotest.test_case "normal form invariance" `Quick test_normal_form;
      Alcotest.test_case "normal form on symmetric graphs" `Quick
        test_normal_form_symmetric;
      Alcotest.test_case "host graphs" `Quick test_host;
      Alcotest.test_case "dot export" `Quick test_dot;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        (path_properties @ gen_properties @ iso_properties) )
