(* Tests for the state-space explorer: FIPG probes, weak-acyclicity
   answers, cycle extraction. *)
open Ncg_graph
open Ncg_game
open Ncg_search
module I = Ncg_instances.Instance

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let max_sg n = Model.make Model.Sg Model.Max n

let test_tree_region_acyclic () =
  (* Thm 2.1 seen exhaustively: no improving-move cycle from small trees. *)
  List.iter
    (fun g ->
      check "tree region acyclic" true
        (Statespace.is_fipg_from (max_sg (Graph.n g)) g = `Yes))
    [ Gen.path 6; Gen.path 7; Gen.double_star 2 3 ]

let test_tree_region_reaches_stability () =
  match
    Statespace.reachable_stable_state (max_sg 7) (Gen.path 7)
  with
  | `Found g ->
      check "found state is stable" true
        (Response.is_stable (max_sg 7) g);
      check "and has the stable-tree shape" true
        (Ncg_core.Theory.stable_tree_shape_ok (max_sg 7) g)
  | `None | `Truncated -> Alcotest.fail "trees stabilise"

let test_fig2_cycle_found_and_valid () =
  let inst = Ncg_instances.Fig2_max_sg.instance in
  match
    Statespace.find_cycle ~rule:Statespace.Best_responses inst.I.model
      inst.I.initial
  with
  | `Cycle { start; moves } ->
      check_int "three-move cycle" 3 (List.length moves);
      (* replaying the moves returns to the start state exactly *)
      let g = Graph.copy start in
      List.iter (fun m -> ignore (Move.apply g m)) moves;
      check "cycle closes" true
        (Canonical.unowned_key g = Canonical.unowned_key start);
      (* and every move is a best response where it is played *)
      let g = Graph.copy start in
      List.iter
        (fun m ->
          let best = Response.best_moves inst.I.model g (Move.agent m) in
          check "cycle move is a best response" true
            (List.exists (fun e -> Move.equal e.Ncg_game.Response.move m) best);
          ignore (Move.apply g m))
        moves
  | `Acyclic | `Truncated -> Alcotest.fail "Fig. 2 has a cycle"

let test_find_cycle_long_path_region () =
  (* Regression for the explicit-stack rewrite of find_cycle: a MAX-SG
     path region is deep and acyclic (Thm 2.1), so the DFS must walk the
     whole region on its heap stack and still answer `Acyclic — and the
     verdicts on both rules must be unchanged from the recursive
     version. *)
  check "path-8 improving region acyclic" true
    (Statespace.find_cycle ~max_states:20_000 (max_sg 8) (Gen.path 8)
    = `Acyclic);
  check "path-7 best-response region acyclic" true
    (Statespace.find_cycle ~rule:Statespace.Best_responses ~max_states:10_000
       (max_sg 7) (Gen.path 7)
    = `Acyclic);
  (* tight budgets still surface as `Truncated, never a silent lie *)
  check "budget surfaces" true
    (Statespace.find_cycle ~max_states:5 (max_sg 8) (Gen.path 8) = `Truncated)

let test_explore_counts () =
  (* From a stable network the region is a single state. *)
  let e = Statespace.explore (max_sg 6) (Gen.star 6) in
  check_int "single state" 1 e.Statespace.explored;
  check_int "which is stable" 1 (List.length e.Statespace.stable);
  check "not truncated" false e.Statespace.truncated

let test_truncation () =
  let e =
    Statespace.explore ~max_states:3 (max_sg 8) (Gen.path 8)
  in
  check "truncation flagged" true e.Statespace.truncated;
  check "bounded" true (e.Statespace.explored <= 3)

let test_cor36_not_br_weakly_acyclic () =
  (* The strongest exhaustive reproduction: from Fig. 3's G1 on the host
     graph K24 - {a,f}, no sequence of best responses ever stabilises. *)
  let inst = Ncg_instances.Fig3_sum_asg.host_instance in
  match
    Statespace.reachable_stable_state ~max_states:100_000
      ~rule:Statespace.Best_responses inst.I.model inst.I.initial
  with
  | `None -> ()
  | `Found _ -> Alcotest.fail "Cor 3.6: unexpected stable state"
  | `Truncated -> Alcotest.fail "Cor 3.6 exploration truncated"

let test_cor42_behavior_documented () =
  (* Machine-checked deviation from the paper (see EXPERIMENTS.md): the
     Cor 4.2 host variants CAN reach stability via best responses because
     cycle-edge owners gain improving deletions.  Pin the observed
     behavior. *)
  let sum = Ncg_instances.Fig9_sum_gbg.host_instance in
  check "cor42 SUM stabilises" true
    (match
       Statespace.reachable_stable_state ~rule:Statespace.Best_responses
         sum.I.model sum.I.initial
     with
    | `Found g -> Response.is_stable sum.I.model g
    | `None | `Truncated -> false)

let test_classify () =
  (* trees: finite improvement + weakly acyclic *)
  let r = Classify.classify (max_sg 7) (Gen.path 7) in
  check "tree FIP" true (r.Classify.finite_improvement = Classify.Yes);
  check "tree BR-WAG" true (r.Classify.br_weakly_acyclic = Classify.Yes);
  check "tree WAG" true (r.Classify.weakly_acyclic = Classify.Yes);
  check "region explored" true (r.Classify.states_explored > 1);
  (* Fig. 2's instance: not FIP but the region may still stabilise *)
  let inst = Ncg_instances.Fig2_max_sg.instance in
  let r2 = Classify.classify inst.I.model inst.I.initial in
  check "fig2 not finite improvement" true
    (r2.Classify.finite_improvement = Classify.No);
  (* Fig. 3 host: not even weakly acyclic under best response *)
  let f3 = Ncg_instances.Fig3_sum_asg.host_instance in
  let r3 = Classify.classify ~max_states:100_000 f3.I.model f3.I.initial in
  check "cor36 not BR-WAG" true (r3.Classify.br_weakly_acyclic = Classify.No);
  ignore (Format.asprintf "%a" Classify.pp r3)

let suite =
  ( "search",
    [
      Alcotest.test_case "tree regions acyclic" `Slow
        test_tree_region_acyclic;
      Alcotest.test_case "tree regions stabilise" `Quick
        test_tree_region_reaches_stability;
      Alcotest.test_case "fig2 cycle extraction" `Quick
        test_fig2_cycle_found_and_valid;
      Alcotest.test_case "find_cycle long-path regions" `Slow
        test_find_cycle_long_path_region;
      Alcotest.test_case "explore stable state" `Quick test_explore_counts;
      Alcotest.test_case "truncation" `Quick test_truncation;
      Alcotest.test_case "cor36 not BR-weakly-acyclic" `Slow
        test_cor36_not_br_weakly_acyclic;
      Alcotest.test_case "cor42 observed behavior" `Slow
        test_cor42_behavior_documented;
      Alcotest.test_case "classification" `Slow test_classify;
    ] )
