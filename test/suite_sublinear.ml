(* Sublinear selection suite: the bucketed cost board, the dirty-set
   refresh discipline, the admission prefilters and the memory-bounded
   cache must all be invisible — same selected agents, same RNG stream,
   same move lists, same trajectories as the full-scan machinery, at a
   fraction of the work.  Unit tests pin the board's (key desc, rank asc)
   visit order and the eviction bookkeeping; QCheck properties drive
   random states and random move sequences through both paths and demand
   bit-identical answers. *)
open Ncg_graph
open Ncg_game
open Ncg_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cost board: bucketed (key desc, rank asc) order                     *)
(* ------------------------------------------------------------------ *)

(* The order [select_desc] must reproduce: the full sort the naive
   max-cost policy probes. *)
let naive_order keys rank =
  let idx = Array.init (Array.length keys) (fun i -> i) in
  Array.sort
    (fun a b ->
      if keys.(a) <> keys.(b) then compare keys.(b) keys.(a)
      else compare rank.(a) rank.(b))
    idx;
  Array.to_list idx

let test_board_order () =
  let keys = [| 5; 3; 5; 1; 0; 3; 5 |] in
  let n = Array.length keys in
  let rank = [| 4; 0; 2; 6; 1; 5; 3 |] in
  let board = Costboard.create n in
  Array.iteri (fun v k -> Costboard.update board v k) keys;
  check "complete once all keys installed" true (Costboard.complete board);
  (* accept nobody: the board must visit every agent in full-sort order *)
  let log = ref [] in
  let picked =
    Costboard.select_desc board ~rank ~probe:(fun v ->
        log := v :: !log;
        false)
  in
  check "no acceptance, no selection" true (picked = None);
  check "probe order is the full sort" true
    (List.rev !log = naive_order keys rank);
  (* accept agent 5 only: the probe sequence stops exactly there *)
  let log = ref [] in
  let picked =
    Costboard.select_desc board ~rank ~probe:(fun v ->
        log := v :: !log;
        v = 5)
  in
  check "first accepted agent selected" true (picked = Some 5);
  let expected_prefix =
    let rec take_until acc = function
      | [] -> List.rev acc
      | v :: rest ->
          if v = 5 then List.rev (v :: acc) else take_until (v :: acc) rest
    in
    take_until [] (naive_order keys rank)
  in
  check "probe sequence is the sort prefix" true
    (List.rev !log = expected_prefix)

let test_board_update_and_reset () =
  let board = Costboard.create 3 in
  Costboard.update board 0 10;
  check "incomplete board refuses to select" true
    (match Costboard.select_desc board ~rank:[| 0; 1; 2 |] ~probe:(fun _ -> true) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Costboard.update board 1 20;
  Costboard.update board 2 5;
  let first =
    Costboard.select_desc board ~rank:[| 0; 1; 2 |] ~probe:(fun _ -> true)
  in
  check "highest key wins" true (first = Some 1);
  (* O(1) re-bucketing: promote agent 2 past everyone *)
  Costboard.update board 2 99;
  let first =
    Costboard.select_desc board ~rank:[| 0; 1; 2 |] ~probe:(fun _ -> true)
  in
  check "updated key re-buckets" true (first = Some 2);
  check "key readback" true (Costboard.key board 2 = Some 99);
  Costboard.reset board;
  check "reset forgets every key" true (not (Costboard.complete board))

let prop_board_matches_full_sort =
  QCheck.Test.make ~count:200
    ~name:"cost board visits agents exactly in (key desc, rank asc) order"
    QCheck.(triple (int_range 1 24) (int_range 0 10) small_int)
    (fun (n, key_span, seed) ->
      let rng = Random.State.make [| seed; 0xb0a2d |] in
      let keys =
        Array.init n (fun _ -> Random.State.int rng (key_span + 1))
      in
      let rank = Array.init n (fun i -> i) in
      (* Fisher-Yates: a random rank permutation *)
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = rank.(i) in
        rank.(i) <- rank.(j);
        rank.(j) <- t
      done;
      let accept = Array.init n (fun _ -> Random.State.bool rng) in
      let board = Costboard.create n in
      Array.iteri (fun v k -> Costboard.update board v k) keys;
      let log = ref [] in
      let picked =
        Costboard.select_desc board ~rank ~probe:(fun v ->
            log := v :: !log;
            accept.(v))
      in
      let order = naive_order keys rank in
      let expected = List.find_opt (fun v -> accept.(v)) order in
      let expected_log =
        match expected with
        | None -> order
        | Some w ->
            let rec take acc = function
              | [] -> List.rev acc
              | v :: rest ->
                  if v = w then List.rev (v :: acc) else take (v :: acc) rest
            in
            take [] order
      in
      picked = expected && List.rev !log = expected_log)

(* ------------------------------------------------------------------ *)
(* Selection equality: board path vs full scan, RNG in lockstep        *)
(* ------------------------------------------------------------------ *)

let make_model ~sum n =
  let alpha = Ncg_rational.Q.make (max 1 n) 4 in
  Model.make ~alpha Model.Gbg (if sum then Model.Sum else Model.Max) n

(* Refresh the board exactly as the engine's first step does. *)
let refresh_board board ctx n =
  for v = 0 to n - 1 do
    Costboard.update board v (Response.Fast.cost_key ctx v)
  done

let prop_select_equals_select_fast =
  QCheck.Test.make ~count:60
    ~name:
      "board-backed max-cost selection = full-scan select_fast (agent and \
       RNG stream)"
    QCheck.(triple (int_range 5 16) small_int bool)
    (fun (n, seed, sum) ->
      let grng = Random.State.make [| seed; n; 0x5e1 |] in
      let m = (n - 1) + Random.State.int grng n in
      let g = Gen.random_m_edges grng n (min m (n * (n - 1) / 2)) in
      let model = make_model ~sum n in
      let ws = Paths.Workspace.create n in
      let ctx_fast = Response.Fast.create ws model g in
      let ctx_board = Response.Fast.create ws model g in
      let w_fast = Witness.create n and w_board = Witness.create n in
      let board = Costboard.create n in
      refresh_board board ctx_board n;
      let rng_fast = Random.State.make [| seed; 0xfa57 |] in
      let rng_board = Random.State.make [| seed; 0xfa57 |] in
      let a =
        Policy.select_fast Policy.Max_cost ~rng:rng_fast ~ctx:ctx_fast
          ~witness:w_fast model g ~last:None
      in
      let b =
        Policy.select_sublinear Policy.Max_cost ~rng:rng_board ~ctx:ctx_board
          ~witness:w_board ~board model g ~last:None
      in
      a = b
      (* the two RNGs must have consumed identical draw counts: their
         next draws coincide *)
      && Random.State.bits rng_fast = Random.State.bits rng_board
      && Random.State.bits rng_fast = Random.State.bits rng_board)

(* Whole trajectories under random move sequences: the engine with the
   cost board (sublinear:true) against the full-scan fast path, across
   both dist modes and both stochastic policies.  [Random_unhappy] takes
   the shared probe skeleton — included to pin that the fall-through
   draws stay in lockstep too. *)
let prop_trajectories_identical =
  QCheck.Test.make ~count:40
    ~name:"sublinear engine trajectories = full-scan trajectories"
    QCheck.(quad (int_range 6 14) small_int bool bool)
    (fun (n, seed, sum, random_policy) ->
      let grng = Random.State.make [| seed; n; 0x7ab |] in
      let g = Gen.random_m_edges grng n (2 * n) in
      let model = make_model ~sum n in
      let policy =
        if random_policy then Policy.Random_unhappy else Policy.Max_cost
      in
      let run sublinear =
        let cfg =
          Engine.config ~policy ~tie_break:Engine.Uniform ~max_steps:25
            ~record_history:true ~incremental:true ~sublinear model
        in
        Engine.run ~rng:(Random.State.make [| seed; 0xfa57 |]) cfg g
      in
      let a = run false and b = run true in
      a.Engine.steps = b.Engine.steps
      && a.Engine.reason = b.Engine.reason
      && Graph.equal a.Engine.final b.Engine.final
      && List.map (fun s -> s.Engine.move) a.Engine.history
         = List.map (fun s -> s.Engine.move) b.Engine.history)

(* ------------------------------------------------------------------ *)
(* Admission prefilters: caps and buy-profile bounds reject nothing    *)
(* that the naive scan admits                                          *)
(* ------------------------------------------------------------------ *)

let prop_prefilter_invisible =
  QCheck.Test.make ~count:60
    ~name:"admission prefilters change no move list (on = off = naive)"
    QCheck.(triple (int_range 5 12) small_int bool)
    (fun (n, seed, sum) ->
      let grng = Random.State.make [| seed; n; 0x9f |] in
      let g = Gen.random_m_edges grng n (2 * n) in
      let model = make_model ~sum n in
      let ws = Paths.Workspace.create n in
      let ctx_on = Response.Fast.create ws model g in
      let ctx_off = Response.Fast.create ws model g in
      Response.Fast.set_prefilter ctx_off false;
      let ok = ref true in
      for u = 0 to n - 1 do
        if
          Response.Fast.best_moves ctx_on u
          <> Response.Fast.best_moves ctx_off u
        then ok := false;
        if
          Response.Fast.improving_moves ctx_on u
          <> Response.Fast.improving_moves ctx_off u
        then ok := false;
        (* and both agree with the naive oracle *)
        if Response.Fast.best_moves ctx_on u <> Response.best_moves model g u
        then ok := false;
        if
          Response.Fast.improving_moves ctx_on u
          <> Response.improving_moves model g u
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Memory-bounded cache: eviction under pressure                       *)
(* ------------------------------------------------------------------ *)

let test_eviction_refill_exact () =
  (* A 3-table budget over a 12-vertex graph: filling all 12 tables must
     evict, and every evicted table must refill byte-identical to a fresh
     BFS. *)
  let n = 12 in
  let g = Gen.random_m_edges (Random.State.make [| 41 |]) n (2 * n) in
  let ws = Paths.Workspace.create n in
  let cache = Distcache.create ~budget:3 n in
  for v = 0 to n - 1 do
    ignore (Distcache.ensure cache ~ws g v)
  done;
  let stats = Distcache.stats cache in
  check_int "every table was filled once" n stats.Distcache.fills;
  check "pressure forced evictions" true (stats.Distcache.evicted >= n - 3);
  let r = Distcache.residency cache in
  check "resident tables within budget" true (r.Distcache.resident <= 3);
  check "peak tracked at or above resident" true
    (r.Distcache.peak >= r.Distcache.resident);
  let ok = ref true in
  for v = 0 to n - 1 do
    let d = Distcache.ensure cache ~ws g v in
    if Intvec.to_array d <> Paths.distances g v then ok := false
  done;
  check "evicted tables refill to fresh BFS" true !ok

let prop_budget_engine_identical =
  QCheck.Test.make ~count:30
    ~name:"cache budget changes no trajectory, keeps residency bounded"
    QCheck.(pair (int_range 8 20) small_int)
    (fun (n, seed) ->
      let grng = Random.State.make [| seed; n; 0xeb |] in
      let g = Gen.random_m_edges grng n (2 * n) in
      let model = make_model ~sum:true n in
      let run cache_budget =
        let cfg =
          Engine.config ~policy:Policy.Max_cost
            ~tie_break:Engine.Prefer_deletion ~max_steps:30
            ~record_history:true ~incremental:true ~sublinear:true
            ?cache_budget model
        in
        Engine.run ~rng:(Random.State.make [| seed; 0xfa57 |]) cfg g
      in
      let free = run None and tight = run (Some 4) in
      let pin_slack = 8 in
      free.Engine.steps = tight.Engine.steps
      && free.Engine.reason = tight.Engine.reason
      && Graph.equal free.Engine.final tight.Engine.final
      && List.map (fun s -> s.Engine.move) free.Engine.history
         = List.map (fun s -> s.Engine.move) tight.Engine.history
      && tight.Engine.residency.Distcache.peak <= 4 + pin_slack)

let test_result_surfaces_residency () =
  (* The engine result must carry the cache's memory accounting: a
     budgeted run reports evictions and a peak near its budget, an
     unbudgeted run reports zero evictions. *)
  let n = 24 in
  let g = Gen.random_m_edges (Random.State.make [| 17 |]) n (2 * n) in
  let model = make_model ~sum:true n in
  let run cache_budget =
    let cfg =
      Engine.config ~policy:Policy.Max_cost ~tie_break:Engine.Prefer_deletion
        ~max_steps:40 ~record_history:false ~incremental:true ~sublinear:true
        ?cache_budget model
    in
    Engine.run ~rng:(Random.State.make [| 3; 0xfa57 |]) cfg g
  in
  let tight = run (Some 6) in
  check "budgeted run evicted tables" true
    (tight.Engine.cache.Distcache.evicted > 0);
  check "budgeted peak bounded" true
    (tight.Engine.residency.Distcache.peak <= 6 + 8);
  check "peak bytes accounted" true
    (tight.Engine.residency.Distcache.peak_bytes > 0);
  let free = run None in
  check "unbudgeted run never evicts" true
    (free.Engine.cache.Distcache.evicted = 0)

let suite =
  ( "sublinear",
    [
      Alcotest.test_case "board visit order" `Quick test_board_order;
      Alcotest.test_case "board update and reset" `Quick
        test_board_update_and_reset;
      Alcotest.test_case "eviction refills exactly" `Quick
        test_eviction_refill_exact;
      Alcotest.test_case "result surfaces residency" `Quick
        test_result_surfaces_residency;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [
          prop_board_matches_full_sort;
          prop_select_equals_select_fast;
          prop_trajectories_identical;
          prop_prefilter_invisible;
          prop_budget_engine_identical;
        ] )
