(* Unit tests for the deterministic I/O fault-injection layer
   (Sysx.Faulty) and the durability discipline of the artifacts routed
   through it: plan grammar roundtrips, short-write resume, injected
   EINTR storms exercising the retry loops, error propagation, the
   fsync-before-rename ordering of checkpoint and lease saves, stale
   temp-file sweeps, and a real fork/crash at the rename boundary. *)
open Ncg_core
open Ncg_experiments
module Faulty = Sysx.Faulty

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fingerprint = "faulty-suite fp=1"

let outcome steps =
  Stats.of_verdict (Stats.Finished { reason = Engine.Converged; steps })

(* ------------------------------------------------------------------ *)
(* Child modes                                                         *)
(*                                                                     *)
(* Unix.fork is off-limits under OCaml 5 once any suite has spawned a  *)
(* domain, so the crash tests re-execute this binary instead — the     *)
(* same pattern the fleet and service suites use for their workers.    *)
(* ------------------------------------------------------------------ *)

let child_flag = "--ncg-faulty-child"

let maybe_run_child () =
  let rec after_flag = function
    | [] -> None
    | flag :: rest when flag = child_flag -> Some rest
    | _ :: rest -> after_flag rest
  in
  match after_flag (Array.to_list Sys.argv) with
  | None -> ()
  | Some [ "exit0" ] -> Unix._exit 0
  | Some [ "crash-writer"; path ] -> (
      (* dies at the rename inside write_atomically — the simulated
         power failure *)
      Faulty.arm
        [ { Faulty.op = Faulty.Rename; where = None; at = 1;
            act = Faulty.Crash_before } ];
      match
        Checkpoint.write_atomically path fingerprint
          [ (("k", 0), outcome 8); (("k", 1), outcome 9) ]
      with
      | () -> Unix._exit 1 (* the fault failed to fire *)
      | exception _ -> Unix._exit 2)
  | Some _ ->
      prerr_endline "unknown faulty child mode";
      exit 64

let spawn_child args =
  let pid =
    Unix.create_process Sys.executable_name
      (Array.of_list (Sys.executable_name :: child_flag :: args))
      Unix.stdin Unix.stdout Unix.stderr
  in
  Sysx.waitpid [] pid

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_faulty" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* every test disarms even on failure: an armed plan leaking into the
   next test would fault unrelated I/O *)
let with_plan ?tracing rules f =
  Faulty.arm ?tracing rules;
  Fun.protect ~finally:Faulty.disarm f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Plan grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_plan_roundtrip () =
  let plan =
    "write[state.ck]@3:short=7;any@2:crash_before;read@1:eintr=5;\
     rename@1:err=ENOSPC;write@2:torn=9;fsync_dir@1:crash_after"
  in
  (match Faulty.parse plan with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok rules ->
      check_int "six rules" 6 (List.length rules);
      check_str "roundtrip" plan (Faulty.to_string rules));
  check "empty plan" true (Faulty.parse "" = Ok []);
  List.iter
    (fun bad ->
      check
        (Printf.sprintf "rejects %S" bad)
        true
        (match Faulty.parse bad with Error _ -> true | Ok _ -> false))
    [
      "write@0:crash_before" (* @0 only composes with short= *);
      "bogus@1:short=2";
      "write@1:flub=3";
      "write@x:short=1";
      "write@1:err=EWHAT";
      "write@1short=1";
    ]

(* ------------------------------------------------------------------ *)
(* Wrapper semantics under injection                                   *)
(* ------------------------------------------------------------------ *)

let payload = String.init 100 (fun i -> Char.chr (33 + (i mod 90)))

let test_short_write_resume () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out" in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      with_plan ~tracing:true
        [ { Faulty.op = Faulty.Write; where = None; at = 0;
            act = Faulty.Short 1 } ]
        (fun () ->
          Sysx.write_all fd (Bytes.of_string payload);
          let writes =
            List.length
              (List.filter (fun (op, _) -> op = Faulty.Write) (Faulty.trace ()))
          in
          check "one write(2) per byte" true (writes >= String.length payload));
      Unix.close fd;
      check_str "payload intact after 1-byte writes" payload (read_file path))

let test_eintr_storm () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out" in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      with_plan ~tracing:true
        [ { Faulty.op = Faulty.Write; where = None; at = 1;
            act = Faulty.Eintr 3 } ]
        (fun () ->
          Sysx.write_all fd (Bytes.of_string payload);
          (* 3 interrupted attempts + the one that lands *)
          let writes =
            List.length
              (List.filter (fun (op, _) -> op = Faulty.Write) (Faulty.trace ()))
          in
          check_int "retry loop re-entered per EINTR" 4 writes);
      Unix.close fd;
      check_str "payload intact after the storm" payload (read_file path);
      (* and the read side: interrupt twice, then deliver *)
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      with_plan
        [ { Faulty.op = Faulty.Read; where = None; at = 1;
            act = Faulty.Eintr 2 } ]
        (fun () ->
          let buf = Bytes.create 200 in
          let k = Sysx.read fd buf 0 200 in
          check_str "read delivered after EINTRs" payload
            (Bytes.sub_string buf 0 k));
      Unix.close fd)

let test_err_propagates () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out" in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      with_plan
        [ { Faulty.op = Faulty.Write; where = None; at = 1;
            act = Faulty.Err Unix.ENOSPC } ]
        (fun () ->
          check "ENOSPC escapes write_all" true
            (match Sysx.write_all fd (Bytes.of_string payload) with
            | () -> false
            | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> true));
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Durability ordering                                                 *)
(* ------------------------------------------------------------------ *)

let ops_of_trace trace = List.map fst trace

let durable_sequence =
  [ Faulty.Openfile; Faulty.Write; Faulty.Fsync; Faulty.Close; Faulty.Rename;
    Faulty.Fsync_dir ]

let test_checkpoint_write_order () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "state.ck" in
      let trace =
        with_plan ~tracing:true [] (fun () ->
            Checkpoint.write_atomically path fingerprint
              [ (("k", 0), outcome 5) ];
            Faulty.trace ())
      in
      check "fsync before rename, dir fsync after" true
        (ops_of_trace trace = durable_sequence))

let test_lease_save_order () =
  with_temp_dir (fun dir ->
      let trace =
        with_plan ~tracing:true [] (fun () ->
            Lease.save ~dir ~fingerprint
              {
                Lease.shard = 1;
                lo = 0;
                hi = 4;
                status = Lease.Running;
                owner = Unix.getpid ();
                heartbeat = 1.0;
                attempts = 1;
              };
            Faulty.trace ())
      in
      check "lease save has the same durable sequence" true
        (ops_of_trace trace = durable_sequence))

(* ------------------------------------------------------------------ *)
(* Stale temp sweeps                                                   *)
(* ------------------------------------------------------------------ *)

let write_junk path =
  let oc = open_out path in
  output_string oc "junk from a dead writer";
  close_out oc

let test_checkpoint_tmp_sweep () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "state.ck" in
      write_junk (path ^ ".tmp");
      let ilog = Incident_log.open_ (Filename.concat dir "inc.jsonl") in
      let cp = Checkpoint.open_ ~incidents:ilog ~fingerprint path in
      Checkpoint.close cp;
      Incident_log.close ilog;
      check "tmp swept on open" false (Sys.file_exists (path ^ ".tmp"));
      let body = read_file (Filename.concat dir "inc.jsonl") in
      check "typed incident recorded" true
        (let has s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         has body "stale_tmp_swept"))

let dead_pid () =
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; child_flag; "exit0" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  ignore (Sysx.waitpid [] pid);
  pid

let test_lease_sweep_dead_only () =
  with_temp_dir (fun dir ->
      let dead = dead_pid () and me = Unix.getpid () in
      let stale =
        Filename.concat dir (Printf.sprintf "shard-0001.lease.%d.tmp" dead)
      in
      let live =
        Filename.concat dir (Printf.sprintf "shard-0002.lease.%d.tmp" me)
      in
      let unrelated = Filename.concat dir "state.ck.tmp" in
      List.iter write_junk [ stale; live; unrelated ];
      let ilog = Incident_log.open_ (Filename.concat dir "inc.jsonl") in
      let swept = Lease.sweep_stale ~dir ~incidents:ilog () in
      Incident_log.close ilog;
      check_int "exactly the dead writer's tmp" 1 swept;
      check "dead-pid tmp removed" false (Sys.file_exists stale);
      check "live writer's tmp kept" true (Sys.file_exists live);
      check "non-lease tmp untouched" true (Sys.file_exists unrelated))

(* ------------------------------------------------------------------ *)
(* A real crash at the rename boundary                                 *)
(* ------------------------------------------------------------------ *)

let test_crash_before_rename () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "state.ck" in
      let old_records = [ (("k", 0), outcome 7) ] in
      Checkpoint.write_atomically path fingerprint old_records;
      (match spawn_child [ "crash-writer"; path ] with
      | _, Unix.WEXITED 70 -> ()
      | _, st ->
          Alcotest.failf "child did not die at the faulted rename: %s"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      check "unrenamed tmp left behind" true (Sys.file_exists (path ^ ".tmp"));
      let cp = Checkpoint.open_ ~resume:true ~fingerprint path in
      check_int "old record set intact" 1 (Checkpoint.loaded cp);
      check "no corruption reported" true
        ((Checkpoint.load_report cp).Checkpoint.corrupted = []);
      check "recovery open swept the tmp" false
        (Sys.file_exists (path ^ ".tmp"));
      Checkpoint.close cp)

let suite =
  ( "faulty",
    [
      Alcotest.test_case "plan grammar roundtrips and rejects" `Quick
        test_plan_roundtrip;
      Alcotest.test_case "write_all resumes injected 1-byte writes" `Quick
        test_short_write_resume;
      Alcotest.test_case "EINTR storms exercise the retry loops" `Quick
        test_eintr_storm;
      Alcotest.test_case "injected ENOSPC propagates typed" `Quick
        test_err_propagates;
      Alcotest.test_case "checkpoint rewrite fsyncs before rename" `Quick
        test_checkpoint_write_order;
      Alcotest.test_case "lease save fsyncs before rename" `Quick
        test_lease_save_order;
      Alcotest.test_case "checkpoint open sweeps stale tmp, typed" `Quick
        test_checkpoint_tmp_sweep;
      Alcotest.test_case "lease sweep removes dead writers only" `Quick
        test_lease_sweep_dead_only;
      Alcotest.test_case "crash before rename keeps the old file" `Quick
        test_crash_before_rename;
    ] )
