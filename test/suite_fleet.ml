(* Tests for the supervised fleet: durable leases, shard merging, and the
   supervisor's crash-reassignment loop.  The supervise tests exercise real
   subprocesses: [Unix.fork] is off-limits once earlier suites have spawned
   domains (OCaml 5), so the injectable [spawn] re-executes this very test
   binary with a child-mode flag that [maybe_run_child] (called first thing
   from main.ml) intercepts before alcotest ever sees the arguments. *)
open Ncg_core
open Ncg_experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_fleet" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* ------------------------------------------------------------------ *)
(* Lease                                                               *)
(* ------------------------------------------------------------------ *)

let lease0 =
  {
    Lease.shard = 3;
    lo = 30;
    hi = 40;
    status = Lease.Running;
    owner = 4242;
    heartbeat = 1234.5;
    attempts = 2;
  }

let test_lease_roundtrip () =
  with_temp_dir (fun dir ->
      let fingerprint = "fleet test fp" in
      Lease.save ~dir ~fingerprint lease0;
      (match Lease.load ~dir ~fingerprint ~shard:3 with
      | Ok l -> check "roundtrips exactly" true (l = lease0)
      | Error e -> Alcotest.failf "load failed: %s" e);
      (* every status survives *)
      List.iter
        (fun status ->
          Lease.save ~dir ~fingerprint { lease0 with Lease.status };
          match Lease.load ~dir ~fingerprint ~shard:3 with
          | Ok l -> check "status survives" true (l.Lease.status = status)
          | Error e -> Alcotest.failf "load failed: %s" e)
        [ Lease.Pending; Lease.Running; Lease.Done; Lease.Quarantined ])

let test_lease_rejects_wrong_fleet () =
  with_temp_dir (fun dir ->
      Lease.save ~dir ~fingerprint:"fleet A" lease0;
      (match Lease.load ~dir ~fingerprint:"fleet B" ~shard:3 with
      | Error e -> check "header mismatch" true (Astring_like.contains e "header")
      | Ok _ -> Alcotest.fail "accepted a lease of another fleet");
      match Lease.load ~dir ~fingerprint:"fleet A" ~shard:4 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shard-0004 lease should not exist")

let test_lease_corruption_detected () =
  with_temp_dir (fun dir ->
      let fingerprint = "fleet fp" in
      Lease.save ~dir ~fingerprint lease0;
      let p = Lease.path ~dir ~shard:3 in
      (* flip a byte inside the framed body *)
      let lines = read_lines p in
      let header = List.nth lines 0 and body = List.nth lines 1 in
      let damaged = Bytes.of_string body in
      Bytes.set damaged (Bytes.length damaged - 1) '!';
      let oc = open_out p in
      Printf.fprintf oc "%s\n%s\n" header (Bytes.to_string damaged);
      close_out oc;
      (match Lease.load ~dir ~fingerprint ~shard:3 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted a corrupted lease");
      (* truncation: header only *)
      let oc = open_out p in
      Printf.fprintf oc "%s\n" header;
      close_out oc;
      match Lease.load ~dir ~fingerprint ~shard:3 with
      | Error e -> check "truncated" true (Astring_like.contains e "truncated")
      | Ok _ -> Alcotest.fail "accepted a truncated lease")

let test_lease_expiry () =
  let l = { lease0 with Lease.status = Lease.Running; heartbeat = 100.0 } in
  check "fresh is live" false (Lease.expired ~now:105.0 ~timeout:10.0 l);
  check "stale is expired" true (Lease.expired ~now:111.0 ~timeout:10.0 l);
  check "only Running expires" false
    (Lease.expired ~now:1e9 ~timeout:10.0 { l with Lease.status = Lease.Done })

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)
(* ------------------------------------------------------------------ *)

let test_plan_partitions () =
  List.iter
    (fun (trials, shards) ->
      let ranges = Fleet.plan ~trials ~shards in
      let covered = Array.make trials 0 in
      Array.iter
        (fun (lo, hi) ->
          check "lo <= hi" true (lo <= hi);
          for t = lo to hi - 1 do
            covered.(t) <- covered.(t) + 1
          done)
        ranges;
      Array.iteri
        (fun t c -> check_int (Printf.sprintf "trial %d covered once" t) 1 c)
        covered;
      (* near-equal: sizes differ by at most one *)
      let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
      let mn = Array.fold_left min max_int sizes
      and mx = Array.fold_left max 0 sizes in
      check "near-equal shards" true (mx - mn <= 1))
    [ (1, 1); (10, 3); (10, 10); (7, 20); (100, 16) ];
  check_int "shards clamped to trials" 5
    (Array.length (Fleet.plan ~trials:5 ~shards:64));
  check "trials < 1 rejected" true
    (match Fleet.plan ~trials:0 ~shards:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Shard merging                                                       *)
(* ------------------------------------------------------------------ *)

let ok_outcome steps =
  {
    Stats.verdict =
      Stats.Finished { reason = Engine.Converged; steps };
    attempts = 1;
    degraded = false;
    quarantined = false;
  }

let write_shard ~dir ~fingerprint ~shard records =
  let path = Fleet.shard_checkpoint ~dir ~shard in
  let cp = Checkpoint.open_ ~fingerprint path in
  List.iter
    (fun (key, trial, outcome) -> Checkpoint.record cp ~key ~trial outcome)
    records;
  Checkpoint.close cp;
  path

let test_merge_disjoint_shards () =
  with_temp_dir (fun dir ->
      let fingerprint = "merge fp" in
      let p0 =
        write_shard ~dir ~fingerprint ~shard:0
          [ ("k", 0, ok_outcome 5); ("k", 1, ok_outcome 6) ]
      in
      let p1 = write_shard ~dir ~fingerprint ~shard:1 [ ("k", 2, ok_outcome 7) ] in
      let missing = Fleet.shard_checkpoint ~dir ~shard:2 in
      let m = Checkpoint.merge_shards ~fingerprint [ p0; p1; missing ] in
      check_int "three records" 3 (List.length m.Checkpoint.merged);
      check_int "no cross duplicates" 0 m.Checkpoint.cross_duplicates;
      check_int "missing shard skipped" 2
        (List.length m.Checkpoint.shard_reports);
      check "sorted by (key, trial)" true
        (List.map fst m.Checkpoint.merged = [ ("k", 0); ("k", 1); ("k", 2) ]))

let test_merge_overlap_last_shard_wins () =
  with_temp_dir (fun dir ->
      let fingerprint = "merge fp" in
      (* trial 1 appears in both shards with different step counts — the
         reassignment-after-partial-progress case.  Later shard wins,
         deterministically. *)
      let p0 =
        write_shard ~dir ~fingerprint ~shard:0
          [ ("k", 0, ok_outcome 5); ("k", 1, ok_outcome 6) ]
      in
      let p1 =
        write_shard ~dir ~fingerprint ~shard:1
          [ ("k", 1, ok_outcome 9); ("k", 2, ok_outcome 7) ]
      in
      let m = Checkpoint.merge_shards ~fingerprint [ p0; p1 ] in
      check_int "three distinct records" 3 (List.length m.Checkpoint.merged);
      check_int "one cross duplicate" 1 m.Checkpoint.cross_duplicates;
      (match List.assoc ("k", 1) m.Checkpoint.merged with
      | { Stats.verdict = Stats.Finished { steps; _ }; _ } ->
          check_int "later shard won" 9 steps
      | _ -> Alcotest.fail "unexpected verdict");
      (* merge is deterministic in argument order: reversed order flips
         the winner *)
      let m' = Checkpoint.merge_shards ~fingerprint [ p1; p0 ] in
      match List.assoc ("k", 1) m'.Checkpoint.merged with
      | { Stats.verdict = Stats.Finished { steps; _ }; _ } ->
          check_int "reversed order, other winner" 6 steps
      | _ -> Alcotest.fail "unexpected verdict")

let test_merge_surfaces_torn_tail () =
  with_temp_dir (fun dir ->
      let fingerprint = "merge fp" in
      let p0 =
        write_shard ~dir ~fingerprint ~shard:0
          [ ("k", 0, ok_outcome 5); ("k", 1, ok_outcome 6) ]
      in
      (* tear the last record mid-line, as a SIGKILL mid-append would *)
      let size = (Unix.stat p0).Unix.st_size in
      let fd = Unix.openfile p0 [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 4);
      Unix.close fd;
      let m = Checkpoint.merge_shards ~fingerprint [ p0 ] in
      check_int "surviving record still loads" 1
        (List.length m.Checkpoint.merged);
      match m.Checkpoint.shard_reports with
      | [ (_, report) ] -> (
          match report.Checkpoint.corrupted with
          | [ c ] -> check "flagged as tail corruption" true c.Checkpoint.tail
          | _ -> Alcotest.fail "expected exactly one corruption")
      | _ -> Alcotest.fail "expected one shard report")

let test_merge_rejects_foreign_shard () =
  with_temp_dir (fun dir ->
      let p0 =
        write_shard ~dir ~fingerprint:"fleet A" ~shard:0 [ ("k", 0, ok_outcome 5) ]
      in
      check "fingerprint mismatch raises" true
        (match Checkpoint.merge_shards ~fingerprint:"fleet B" [ p0 ] with
        | exception Failure _ -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Runner range sharding                                               *)
(* ------------------------------------------------------------------ *)

let small_point () =
  match Fleet.point_spec "fig7" ~n:10 with
  | Some p -> p
  | None -> Alcotest.fail "fig7 point missing"

let test_runner_range_parity () =
  let { Fleet.spec; _ } = small_point () in
  let trials = 12 in
  let full = Runner.run_outcomes ~domains:1 ~seed:11 ~trials spec in
  let sharded =
    List.concat_map
      (fun (lo, hi) ->
        Runner.run_outcomes ~domains:1 ~seed:11 ~range:(lo, hi) ~trials spec)
      [ (0, 5); (5, 6); (6, 12) ]
  in
  check "sharded outcomes = full outcomes" true (full = sharded);
  check "range validated" true
    (match
       Runner.run_outcomes ~domains:1 ~range:(4, 20) ~trials spec
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Supervise end-to-end (subprocess workers)                           *)
(* ------------------------------------------------------------------ *)

(* The test binary doubles as the worker executable: [maybe_run_child]
   (called before alcotest in main.ml) intercepts this flag, runs the
   requested child mode, and exits. *)
let child_flag = "--ncg-fleet-child"

let worker_child = function
  | [ dir; fingerprint; shard; seed; trials ] ->
      let (point : Fleet.point) = small_point () in
      exit
        (match
           Fleet.worker ~dir ~fingerprint ~shard:(int_of_string shard)
             ~key:point.Fleet.key ~seed:(int_of_string seed)
             ~trials:(int_of_string trials) ~heartbeat_interval:0.01
             point.Fleet.spec
         with
        | Ok () -> 0
        | Error _ -> 3
        | exception _ -> 4)
  | _ ->
      prerr_endline "bad fleet worker-child arguments";
      exit 64

let incident_child = function
  | [ path; writer; per_writer ] ->
      let log = Incident_log.open_ path in
      for i = 0 to int_of_string per_writer - 1 do
        Incident_log.record log
          (Incident_log.Reassigned { shard = int_of_string writer; attempt = i })
      done;
      Incident_log.close log;
      exit 0
  | _ ->
      prerr_endline "bad incident-child arguments";
      exit 64

let maybe_run_child () =
  let rec after_flag = function
    | [] -> None
    | flag :: rest when flag = child_flag -> Some rest
    | _ :: rest -> after_flag rest
  in
  match after_flag (Array.to_list Sys.argv) with
  | None -> ()
  | Some ("worker" :: args) -> worker_child args
  | Some ("crash" :: _) ->
      (* die by signal, as a segfault or the OOM killer would *)
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      exit 9
  | Some ("incidents" :: args) -> incident_child args
  | Some _ ->
      prerr_endline "unknown fleet child mode";
      exit 64

let run_child args =
  Unix.create_process Sys.executable_name
    (Array.of_list ((Sys.executable_name :: child_flag :: args)))
    Unix.stdin Unix.stdout Unix.stderr

(* Spawn a real worker subprocess.  [sabotage] lets a test kill specific
   attempts: it receives (shard, attempts-so-far) and returns true to
   make the child die by SIGKILL before doing any work. *)
let exec_spawn ~dir ~fingerprint ~seed ~trials
    ?(sabotage = fun ~shard:_ ~spawned:_ -> false) () =
  let spawned = Hashtbl.create 8 in
  fun ~shard ->
    let n = try Hashtbl.find spawned shard with Not_found -> 0 in
    Hashtbl.replace spawned shard (n + 1);
    if sabotage ~shard ~spawned:n then run_child [ "crash" ]
    else
      run_child
        [
          "worker"; dir; fingerprint; string_of_int shard; string_of_int seed;
          string_of_int trials;
        ]

let fleet_config ~dir ~spawn ?incidents () =
  let ({ Fleet.key; _ } : Fleet.point) = small_point () in
  {
    Fleet.dir;
    fingerprint = "suite fleet fp";
    key;
    seed = 11;
    trials = 12;
    shards = 4;
    workers = 2;
    heartbeat_timeout = 20.0;
    poll_interval = 0.01;
    max_respawns = 2;
    spawn;
    incidents = (match incidents with Some i -> Some i | None -> None);
  }

let reference_summary () =
  let { Fleet.spec; _ } = small_point () in
  Runner.run ~domains:1 ~seed:11 ~trials:12 spec

let test_supervise_matches_single_process () =
  with_temp_dir (fun dir ->
      let spawn =
        exec_spawn ~dir ~fingerprint:"suite fleet fp" ~seed:11 ~trials:12 ()
      in
      let r = Fleet.supervise (fleet_config ~dir ~spawn ()) in
      check_int "no trial missing" 0 (List.length r.Fleet.missing);
      check_int "no respawns needed" 0 r.Fleet.respawns;
      check "bit-identical to single-process run" true
        (r.Fleet.summary = reference_summary ());
      (* a second supervise run resumes off the Done leases: no respawn,
         same result *)
      let r2 = Fleet.supervise (fleet_config ~dir ~spawn ()) in
      check "resumed fleet identical" true
        (r2.Fleet.summary = reference_summary ()))

let test_supervise_reassigns_after_crashes () =
  with_temp_dir (fun dir ->
      let log_path = Filename.temp_file "ncg_fleet_inc" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
        (fun () ->
          let log = Incident_log.open_ log_path in
          (* first attempt of every shard dies before doing any work *)
          let spawn =
            exec_spawn ~dir ~fingerprint:"suite fleet fp" ~seed:11 ~trials:12
              ~sabotage:(fun ~shard:_ ~spawned -> spawned = 0)
              ()
          in
          let r = Fleet.supervise (fleet_config ~dir ~spawn ~incidents:log ()) in
          Incident_log.close log;
          check_int "every shard was respawned once" 4 r.Fleet.respawns;
          check_int "nothing missing" 0 (List.length r.Fleet.missing);
          check_int "nothing quarantined" 0 (List.length r.Fleet.quarantined);
          check "crashes do not change the result" true
            (r.Fleet.summary = reference_summary ());
          let text = String.concat "\n" (read_lines log_path) in
          check "worker deaths logged" true
            (Astring_like.contains text "\"worker_dead\"");
          check "reassignments logged" true
            (Astring_like.contains text "\"reassigned\"")))

let test_supervise_quarantines_hopeless_shard () =
  with_temp_dir (fun dir ->
      let log_path = Filename.temp_file "ncg_fleet_inc" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
        (fun () ->
          let log = Incident_log.open_ log_path in
          (* shard 2 dies on every attempt; the rest are healthy *)
          let spawn =
            exec_spawn ~dir ~fingerprint:"suite fleet fp" ~seed:11 ~trials:12
              ~sabotage:(fun ~shard ~spawned:_ -> shard = 2)
              ()
          in
          let r = Fleet.supervise (fleet_config ~dir ~spawn ~incidents:log ()) in
          Incident_log.close log;
          check "shard 2 quarantined" true (r.Fleet.quarantined = [ 2 ]);
          check "its trials are missing" true (r.Fleet.missing <> []);
          check_int "the other shards completed" (12 - List.length r.Fleet.missing)
            (List.length r.Fleet.outcomes);
          let text = String.concat "\n" (read_lines log_path) in
          check "quarantine logged" true
            (Astring_like.contains text "\"shard_quarantined\"");
          (* the quarantined lease survives on disk for post-mortem *)
          match Lease.load ~dir ~fingerprint:"suite fleet fp" ~shard:2 with
          | Ok l -> check "lease quarantined" true (l.Lease.status = Lease.Quarantined)
          | Error e -> Alcotest.failf "lease unreadable: %s" e))

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  (* lease heartbeats and expiry checks compare Clock.monotonic stamps;
     the clock must never run backwards (wall-clock skew — NTP steps,
     manual resets — must not fabricate or mask staleness) *)
  let prev = ref (Clock.monotonic ()) in
  for _ = 1 to 1000 do
    let now = Clock.monotonic () in
    check "never runs backwards" true (now >= !prev);
    prev := now
  done;
  (* and it advances with real elapsed time *)
  let t0 = Clock.monotonic () in
  Sysx.sleepf 0.05;
  let dt = Clock.monotonic () -. t0 in
  check "advances with real time" true (dt >= 0.04);
  (* regression: a lease heartbeat stamped with the monotonic clock is
     judged by the same timeline, so expiry reflects real elapsed time
     regardless of what the wall clock does in between *)
  let l =
    { lease0 with Lease.status = Lease.Running; heartbeat = Clock.monotonic () }
  in
  check "fresh on the monotonic timeline" false
    (Lease.expired ~now:(Clock.monotonic ()) ~timeout:10.0 l);
  check "stale once the timeline advances past the timeout" true
    (Lease.expired ~now:(l.Lease.heartbeat +. 10.01) ~timeout:10.0 l)

(* ------------------------------------------------------------------ *)
(* Incident log: rotation                                              *)
(* ------------------------------------------------------------------ *)

let event_line w i =
  Printf.sprintf "{\"event\":\"reassigned\",\"shard\":%d,\"attempt\":%d}" w i

let test_incident_log_rotation () =
  let log_path = Filename.temp_file "ncg_inc_rot" ".jsonl" in
  let segment k = Printf.sprintf "%s.%d" log_path k in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (log_path :: List.init 16 (fun k -> segment (k + 1))))
    (fun () ->
      (* ~44-byte records, 128-byte segments: rotation every 3 records *)
      let log =
        Incident_log.open_
          ~rotation:{ Incident_log.max_bytes = 128; keep = 12 }
          log_path
      in
      let total = 30 in
      for i = 0 to total - 1 do
        Incident_log.record log (Incident_log.Reassigned { shard = 0; attempt = i })
      done;
      Incident_log.close log;
      (* collect every surviving line across live file and segments *)
      let lines =
        List.concat_map
          (fun p -> if Sys.file_exists p then read_lines p else [])
          (log_path :: List.init 12 (fun k -> segment (k + 1)))
      in
      check "rotation happened" true (Sys.file_exists (segment 1));
      (* rotation is rename-only: no record lost, none torn *)
      check_int "every record survives across segments" total
        (List.length lines);
      for i = 0 to total - 1 do
        check "record intact" true
          (List.exists (fun l -> l = event_line 0 i) lines)
      done)

let test_incident_log_rotation_drops_oldest () =
  let log_path = Filename.temp_file "ncg_inc_rot" ".jsonl" in
  let segment k = Printf.sprintf "%s.%d" log_path k in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (log_path :: List.init 16 (fun k -> segment (k + 1))))
    (fun () ->
      let log =
        Incident_log.open_
          ~rotation:{ Incident_log.max_bytes = 128; keep = 2 }
          log_path
      in
      for i = 0 to 59 do
        Incident_log.record log (Incident_log.Reassigned { shard = 0; attempt = i })
      done;
      Incident_log.close log;
      check "keep bound respected" false (Sys.file_exists (segment 3));
      (* the newest records are the ones retained, and whole lines only *)
      let lines = read_lines log_path @ read_lines (segment 1) @ read_lines (segment 2) in
      check "bounded but non-empty" true (List.length lines > 0);
      List.iter
        (fun line ->
          check "line is one whole record" true
            (String.length line > 2
            && line.[0] = '{'
            && line.[String.length line - 1] = '}'
            && not (Astring_like.contains line "}{")))
        lines;
      check "latest record retained" true
        (List.exists (fun l -> l = event_line 0 59) lines))

(* ------------------------------------------------------------------ *)
(* Incident log: concurrent writers                                    *)
(* ------------------------------------------------------------------ *)

let test_incident_log_concurrent_writers () =
  let log_path = Filename.temp_file "ncg_inc_race" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let writers = 4 and per_writer = 50 in
      let pids =
        List.init writers (fun w ->
            run_child
              [
                "incidents"; log_path; string_of_int w;
                string_of_int per_writer;
              ])
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "writer child failed")
        pids;
      let lines = read_lines log_path in
      check_int "no record lost or torn" (writers * per_writer)
        (List.length lines);
      (* every line is exactly one well-formed record: starts with {,
         ends with }, and no line contains two records glued together *)
      List.iter
        (fun line ->
          check "line is one record" true
            (String.length line > 2
            && line.[0] = '{'
            && line.[String.length line - 1] = '}'
            && not (Astring_like.contains line "}{")))
        lines;
      (* per writer, all records present *)
      List.iteri
        (fun w () ->
          for i = 0 to per_writer - 1 do
            let needle =
              Printf.sprintf "{\"event\":\"reassigned\",\"shard\":%d,\"attempt\":%d}" w i
            in
            check "record intact" true
              (List.exists (fun l -> l = needle) lines)
          done)
        (List.init writers (fun _ -> ())))

let suite =
  ( "fleet",
    [
      Alcotest.test_case "lease roundtrip" `Quick test_lease_roundtrip;
      Alcotest.test_case "lease rejects wrong fleet" `Quick
        test_lease_rejects_wrong_fleet;
      Alcotest.test_case "lease corruption detected" `Quick
        test_lease_corruption_detected;
      Alcotest.test_case "lease expiry" `Quick test_lease_expiry;
      Alcotest.test_case "plan partitions trials" `Quick test_plan_partitions;
      Alcotest.test_case "merge disjoint shards" `Quick
        test_merge_disjoint_shards;
      Alcotest.test_case "merge overlap: last shard wins" `Quick
        test_merge_overlap_last_shard_wins;
      Alcotest.test_case "merge surfaces torn tail" `Quick
        test_merge_surfaces_torn_tail;
      Alcotest.test_case "merge rejects foreign shard" `Quick
        test_merge_rejects_foreign_shard;
      Alcotest.test_case "runner range parity" `Quick test_runner_range_parity;
      Alcotest.test_case "supervise = single process" `Quick
        test_supervise_matches_single_process;
      Alcotest.test_case "supervise reassigns after crashes" `Quick
        test_supervise_reassigns_after_crashes;
      Alcotest.test_case "supervise quarantines hopeless shard" `Quick
        test_supervise_quarantines_hopeless_shard;
      Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
      Alcotest.test_case "incident log rotation keeps whole records" `Quick
        test_incident_log_rotation;
      Alcotest.test_case "incident log rotation drops oldest" `Quick
        test_incident_log_rotation_drops_oldest;
      Alcotest.test_case "incident log concurrent writers" `Quick
        test_incident_log_concurrent_writers;
    ] )
