(* Envelope regression tests: measured convergence lengths must stay
   inside the paper's asymptotic envelopes, with explicit constants that
   give headroom but would catch a regression to a slower dynamics (e.g.
   an engine bug that makes agents dither).  Theorem 2.11: the max-cost
   policy on MAX-SG trees converges in O(n log n) steps.  Theorem 2.1:
   any policy on MAX-SG trees converges within the explicit O(n^3)
   bound. *)
open Ncg_graph
open Ncg_game
open Ncg_core

let check = Alcotest.(check bool)

let max_sg n = Model.make Model.Sg Model.Max n

let run_tree ~policy n seed =
  let g = Gen.random_tree (Random.State.make [| seed; n |]) n in
  Engine.run
    ~rng:(Random.State.make [| seed; n; 0xe0 |])
    (Engine.config ~policy (max_sg n))
    g

let test_thm211_envelope () =
  (* Theorem 2.11 envelope: c * n * log2 n + b with c = 4, b = 16 —
     roughly an order of magnitude above the measured worst case on
     random trees, far below the Theta(n^3) a broken fast path could
     produce. *)
  List.iter
    (fun n ->
      for seed = 1 to 5 do
        let r = run_tree ~policy:Policy.Max_cost n seed in
        check
          (Printf.sprintf "max-cost MAX-SG converges (n=%d seed=%d)" n seed)
          true (Engine.converged r);
        check
          (Printf.sprintf "steps within 4 n log n + 16 (n=%d seed=%d)" n seed)
          true
          (float_of_int r.Engine.steps <= (4.0 *. Theory.nlogn n) +. 16.0)
      done)
    [ 8; 16; 32; 64 ]

let test_thm21_ceiling () =
  (* Theorem 2.1 ceiling: every policy stays under the explicit O(n^3)
     bound on trees — including better-response dynamics. *)
  let policies =
    [ Policy.Max_cost; Policy.Random_unhappy; Policy.Round_robin ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun policy ->
          for seed = 1 to 3 do
            let r = run_tree ~policy n seed in
            check
              (Printf.sprintf "within Thm 2.1 bound (n=%d seed=%d)" n seed)
              true
              (Engine.converged r
              && r.Engine.steps <= Theory.thm21_step_bound n)
          done)
        policies)
    [ 6; 12; 24 ]

let prop_thm211_random_trees =
  QCheck.Test.make ~count:40
    ~name:"Thm 2.11 envelope holds on random trees (max-cost MAX-SG)"
    QCheck.(pair (int_bound 100_000) (int_range 4 40))
    (fun (seed, n) ->
      let r = run_tree ~policy:Policy.Max_cost n seed in
      Engine.converged r
      && float_of_int r.Engine.steps <= (4.0 *. Theory.nlogn n) +. 16.0)

let prop_envelope_monotone_sanity =
  (* The per-size worst case over a fixed seed pool grows sub-cubically:
     doubling n from 16 to 32 must multiply the observed maximum by far
     less than 8 (the Theta(n^3) factor).  A fast-path bug that silently
     degraded best responses to weaker moves would blow this up. *)
  QCheck.Test.make ~count:1 ~name:"observed growth 16->32 is sub-cubic"
    QCheck.(always ())
    (fun () ->
      let worst n =
        let m = ref 0 in
        for seed = 1 to 8 do
          let r = run_tree ~policy:Policy.Max_cost n seed in
          m := max !m r.Engine.steps
        done;
        !m
      in
      worst 32 < 8 * max 1 (worst 16))

let suite =
  ( "envelope",
    [
      Alcotest.test_case "Thm 2.11 n log n envelope" `Quick
        test_thm211_envelope;
      Alcotest.test_case "Thm 2.1 cubic ceiling" `Quick test_thm21_ceiling;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_thm211_random_trees; prop_envelope_monotone_sanity ] )
