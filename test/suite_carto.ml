(* Tests for the crash-tolerant distributed cartographer: state codec,
   durable ledger, wave-synchronous exploration vs the single-process
   explorer, crash recovery / exactly-once replay, and the subprocess
   supervisor.  Like the fleet suite, the subprocess tests re-execute
   this test binary in a child mode intercepted by [maybe_run_child]. *)
open Ncg_graph
open Ncg_game
open Ncg_search
open Ncg_experiments
module C = Cartography

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Run directories nest wave subdirectories, so cleanup is recursive. *)
let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "ncg_carto" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let fig2_spec () =
  match C.point_spec "fig2-br" with
  | Some s -> s
  | None -> Alcotest.fail "fig2-br point missing"

let in_process_config ~dir = C.default_config ~dir

(* ------------------------------------------------------------------ *)
(* State codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let owned =
    let g = Graph.create 5 in
    Graph.add_edge g ~owner:0 0 1;
    Graph.add_edge g ~owner:2 1 2;
    Graph.add_edge g ~owner:4 2 4;
    Graph.add_edge g ~owner:3 0 3;
    g
  in
  List.iter
    (fun g ->
      let enc = C.encode_state g in
      let g' = C.decode_state enc in
      check_str "encode . decode = id on encodings" enc (C.encode_state g');
      check_str "canonical key survives" (Canonical.key g) (Canonical.key g'))
    [ Gen.path 5; Gen.star 6; Gen.double_star 2 3; owned;
      (fig2_spec ()).C.initial; Graph.create 3 ]

let test_codec_rejects_malformed () =
  List.iter
    (fun s ->
      check (Printf.sprintf "rejects %S" s) true
        (match C.decode_state s with
        | exception Failure _ -> true
        | _ -> false))
    [ ""; "x"; "3;01"; "3;0,5"; "3;0,0"; "3;-1,2"; "2;0,1;"; "-4" ]

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let fp_test = "carto test fp"

let test_ledger_roundtrip () =
  with_temp_dir (fun dir ->
      let part = 0 in
      C.Ledger.append ~dir ~fingerprint:fp_test ~part [ (0, "a"); (1, "b") ];
      C.Ledger.append ~dir ~fingerprint:fp_test ~part [ (2, "c") ];
      (match C.Ledger.load_part ~dir ~fingerprint:fp_test ~part with
      | Ok { C.Ledger.entries; torn_tail } ->
          check "no torn tail" false torn_tail;
          check "append order preserved" true
            (entries = [ (0, "a"); (1, "b"); (2, "c") ])
      | Error e -> Alcotest.failf "load failed: %s" e);
      (* a missing partition is an empty Ok, a foreign one an Error *)
      (match C.Ledger.load_part ~dir ~fingerprint:fp_test ~part:1 with
      | Ok { C.Ledger.entries = []; torn_tail = false } -> ()
      | _ -> Alcotest.fail "missing partition should be empty Ok");
      match C.Ledger.load_part ~dir ~fingerprint:"other fp" ~part with
      | Error e -> check "foreign fingerprint" true (Astring_like.contains e "fingerprint")
      | Ok _ -> Alcotest.fail "accepted a foreign ledger")

let test_ledger_torn_tail_is_prefix () =
  with_temp_dir (fun dir ->
      let part = 3 in
      C.Ledger.append ~dir ~fingerprint:fp_test ~part
        [ (0, "aaa"); (0, "bbb"); (1, "ccc") ];
      let p = C.Ledger.path ~dir ~part in
      (* SIGKILL mid-append tears the last record mid-line *)
      let size = (Unix.stat p).Unix.st_size in
      let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 4);
      Unix.close fd;
      (match C.Ledger.load_part ~dir ~fingerprint:fp_test ~part with
      | Ok { C.Ledger.entries; torn_tail } ->
          check "torn tail flagged" true torn_tail;
          check "surviving records are the contiguous prefix" true
            (entries = [ (0, "aaa"); (0, "bbb") ])
      | Error e -> Alcotest.failf "torn tail should still load: %s" e);
      (* load_all refuses an unrepaired tear: recovery must run first *)
      (match C.Ledger.load_all ~dir ~fingerprint:fp_test with
      | Error e -> check "load_all refuses tear" true (Astring_like.contains e "torn")
      | Ok _ -> Alcotest.fail "load_all accepted a torn partition");
      (* rollback sheds the tear; then load_all succeeds *)
      ignore (C.Ledger.rollback ~dir ~fingerprint:fp_test ~max_wave:99);
      match C.Ledger.load_all ~dir ~fingerprint:fp_test with
      | Ok seen -> check_int "repaired" 2 (Hashtbl.length seen)
      | Error e -> Alcotest.failf "load_all after repair: %s" e)

let test_ledger_midfile_corruption_is_error () =
  with_temp_dir (fun dir ->
      let part = 5 in
      C.Ledger.append ~dir ~fingerprint:fp_test ~part [ (0, "aaa"); (0, "bbb") ];
      let p = C.Ledger.path ~dir ~part in
      let content = In_channel.with_open_bin p In_channel.input_all in
      (* flip a byte inside the FIRST record: damage, not a crash tail *)
      let lines = String.split_on_char '\n' content in
      let damaged =
        match lines with
        | hdr :: r1 :: rest ->
            let b = Bytes.of_string r1 in
            Bytes.set b (Bytes.length b - 1) '!';
            String.concat "\n" (hdr :: Bytes.to_string b :: rest)
        | _ -> Alcotest.fail "unexpected ledger layout"
      in
      Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc damaged);
      match C.Ledger.load_part ~dir ~fingerprint:fp_test ~part with
      | Error e -> check "mid-file damage surfaced" true (Astring_like.contains e "mid-file")
      | Ok _ -> Alcotest.fail "accepted mid-file corruption")

let test_ledger_rollback () =
  with_temp_dir (fun dir ->
      (* spread records over two partitions, waves 0..3 *)
      C.Ledger.append ~dir ~fingerprint:fp_test ~part:0
        [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ];
      C.Ledger.append ~dir ~fingerprint:fp_test ~part:1 [ (1, "e"); (3, "f") ];
      check_int "drops every record past the committed prefix" 3
        (C.Ledger.rollback ~dir ~fingerprint:fp_test ~max_wave:1);
      check_int "idempotent" 0 (C.Ledger.rollback ~dir ~fingerprint:fp_test ~max_wave:1);
      match C.Ledger.load_all ~dir ~fingerprint:fp_test with
      | Ok seen ->
          check_int "survivors" 3 (Hashtbl.length seen);
          List.iter
            (fun k -> check ("kept " ^ k) true (Hashtbl.mem seen k))
            [ "a"; "b"; "e" ]
      | Error e -> Alcotest.failf "load_all: %s" e)

(* ------------------------------------------------------------------ *)
(* In-process runs vs the single-process explorer                      *)
(* ------------------------------------------------------------------ *)

let test_fig2_matches_statespace () =
  with_temp_dir (fun dir ->
      let spec = fig2_spec () in
      let r = C.run (in_process_config ~dir) spec in
      let e =
        Statespace.explore ~max_states:spec.C.max_states
          ~rule:Statespace.Best_responses spec.C.model spec.C.initial
      in
      check_int "explored = single-process" e.Statespace.explored r.C.explored;
      check "stable sets identical" true
        (List.sort compare e.Statespace.stable = List.map fst r.C.stable);
      check "fig2 BR cycle found" true r.C.has_cycle;
      check_int "the 3-cycle is the largest SCC" 3 r.C.largest_scc;
      check_int "and the only nontrivial one" 1 r.C.nontrivial_sccs;
      check "fresh run" false r.C.resumed;
      check "not truncated" false r.C.truncated;
      check_int "nothing rolled back" 0 r.C.rolled_back;
      (* verdict agrees with the cycle hunter *)
      check "find_cycle agrees" true
        (match
           Statespace.find_cycle ~rule:Statespace.Best_responses spec.C.model
             spec.C.initial
         with
        | `Cycle _ -> r.C.has_cycle
        | `Acyclic -> not r.C.has_cycle
        | `Truncated -> false);
      (* the sink encodings decode to genuinely stable networks *)
      List.iter
        (fun (_, enc) ->
          check "decoded sink is stable" true
            (Response.is_stable spec.C.model (C.decode_state enc)))
        r.C.stable;
      (* exactly-once: the ledger holds exactly the committed region *)
      (match C.Ledger.load_all ~dir ~fingerprint:(C.fingerprint spec) with
      | Ok seen -> check_int "ledger = region" r.C.explored (Hashtbl.length seen)
      | Error e -> Alcotest.failf "ledger: %s" e);
      (* resuming a finished run re-derives the identical report *)
      let r2 = C.run (in_process_config ~dir) spec in
      check "resume flagged" true r2.C.resumed;
      check_str "identical fingerprint on resume" r.C.region_fingerprint
        r2.C.region_fingerprint;
      check_int "identical region on resume" r.C.explored r2.C.explored)

let test_chunking_invariance () =
  let spec = fig2_spec () in
  let fp_of chunk_size =
    with_temp_dir (fun dir ->
        let r = C.run { (in_process_config ~dir) with C.chunk_size } spec in
        r.C.region_fingerprint)
  in
  let reference = fp_of 64 in
  check_str "chunk size 1 explores the same region" reference (fp_of 1);
  check_str "chunk size 2 explores the same region" reference (fp_of 2);
  (* and a resume may change the chunking mid-run *)
  with_temp_dir (fun dir ->
      let crashed = ref false in
      (try
         ignore
           (C.run
              {
                (in_process_config ~dir) with
                C.chunk_size = 1;
                on_wave =
                  Some
                    (fun ~wave ~frontier:_ ~explored:_ ->
                      if wave >= 1 then failwith "injected-crash");
              }
              spec)
       with Failure m when Astring_like.contains m "injected-crash" ->
         crashed := true);
      check "crash injected" true !crashed;
      let r = C.run { (in_process_config ~dir) with C.chunk_size = 3 } spec in
      check "resumed" true r.C.resumed;
      check_str "rechunked resume, identical region" reference
        r.C.region_fingerprint)

let test_small_n_matrix_matches_statespace () =
  (* Satellite: full game-type matrix.  Distributed output must agree
     with Statespace.explore state for state, and the sinks must classify
     identically whether the representative came from the in-memory
     explorer or was decoded from the durable artifacts. *)
  let n = 4 in
  List.iter
    (fun game ->
      List.iter
        (fun dist ->
          let model = Model.make game dist n in
          let tag =
            Printf.sprintf "matrix-%s-%s"
              (String.lowercase_ascii (Model.game_name model))
              (match dist with Model.Sum -> "sum" | Model.Max -> "max")
          in
          let spec =
            {
              C.tag;
              model;
              initial = Gen.path n;
              rule = Statespace.All_improving;
              key_mode = C.Exact;
              max_states = 20_000;
            }
          in
          let e =
            Statespace.explore ~max_states:20_000 model (Gen.path n)
          in
          let r = with_temp_dir (fun dir -> C.run (in_process_config ~dir) spec) in
          check_int (tag ^ ": explored") e.Statespace.explored r.C.explored;
          check (tag ^ ": not truncated") false
            (e.Statespace.truncated || r.C.truncated);
          let single = List.sort compare e.Statespace.stable in
          check (tag ^ ": stable keys") true (single = List.map fst r.C.stable);
          (* sink classification: single-process representative vs decoded
             distributed encoding *)
          let reps =
            List.combine e.Statespace.stable e.Statespace.stable_reps
          in
          List.iter
            (fun (key, enc) ->
              let mine = C.decode_state enc in
              let theirs = List.assoc key reps in
              check (tag ^ ": sink class agrees") true
                (Classify.classify_sink model mine
                = Classify.classify_sink model theirs))
            r.C.stable)
        [ Model.Sum; Model.Max ])
    [ Model.Sg; Model.Asg; Model.Gbg; Model.Bg; Model.Bilateral ]

let test_iso_mode_deterministic () =
  let spec = { (fig2_spec ()) with C.key_mode = C.Iso } in
  let run () =
    with_temp_dir (fun dir -> C.run (in_process_config ~dir) spec)
  in
  let r1 = run () and r2 = run () in
  check_str "iso runs reproducible" r1.C.region_fingerprint
    r2.C.region_fingerprint;
  let exact = with_temp_dir (fun dir -> C.run (in_process_config ~dir) (fig2_spec ())) in
  check "iso quotient no larger than exact region" true
    (r1.C.explored <= exact.C.explored);
  check "the BR cycle survives the quotient" true r1.C.has_cycle

let test_budget_truncation () =
  let spec = { (fig2_spec ()) with C.max_states = 3 } in
  let r = with_temp_dir (fun dir -> C.run (in_process_config ~dir) spec) in
  check "truncation flagged" true r.C.truncated;
  check "bounded" true (r.C.explored <= 3)

let test_meta_guard () =
  with_temp_dir (fun dir ->
      ignore (C.run (in_process_config ~dir) (fig2_spec ()));
      let other =
        match C.point_spec "fig2-imp" with
        | Some s -> s
        | None -> Alcotest.fail "fig2-imp point missing"
      in
      check "directory refuses a different exploration" true
        (match C.run (in_process_config ~dir) other with
        | exception Failure m -> Astring_like.contains m "belongs to"
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Crash recovery: rollback, phantom records, torn tails               *)
(* ------------------------------------------------------------------ *)

let test_recovery_rolls_back_uncommitted_ledger () =
  let spec = fig2_spec () in
  let fp = C.fingerprint spec in
  let reference =
    with_temp_dir (fun dir -> C.run (in_process_config ~dir) spec)
  in
  with_temp_dir (fun dir ->
      (* crash after wave 1's commit: frontiers 0..2 exist *)
      (try
         ignore
           (C.run
              {
                (in_process_config ~dir) with
                C.on_wave =
                  Some
                    (fun ~wave ~frontier:_ ~explored:_ ->
                      if wave >= 1 then failwith "injected-crash");
              }
              spec)
       with Failure m when Astring_like.contains m "injected-crash" -> ());
      (* simulate the ledger running ahead of a frontier rename the crash
         prevented: phantom records of an uncommitted wave ... *)
      List.iter
        (fun key ->
          C.Ledger.append ~dir ~fingerprint:fp
            ~part:(C.Ledger.part_of_key key) [ (3, key) ])
        [ "7;0,1"; "7;1,2" ];
      (* ... plus a torn tail on a partition, as SIGKILL mid-append leaves *)
      let torn_part = C.Ledger.part_of_key "7;0,1" in
      let p = C.Ledger.path ~dir ~part:torn_part in
      let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
      ignore (Unix.write_substring fd "zz" 0 2);
      Unix.close fd;
      let r = C.run (in_process_config ~dir) spec in
      check "resumed" true r.C.resumed;
      check_int "both phantoms rolled back" 2 r.C.rolled_back;
      check_str "recovered region identical" reference.C.region_fingerprint
        r.C.region_fingerprint;
      check_int "no state lost or double-counted" reference.C.explored
        r.C.explored;
      (* after recovery the ledger again holds exactly the region *)
      match C.Ledger.load_all ~dir ~fingerprint:fp with
      | Ok seen -> check_int "ledger = region" r.C.explored (Hashtbl.length seen)
      | Error e -> Alcotest.failf "ledger after recovery: %s" e)

(* ------------------------------------------------------------------ *)
(* Worker protocol                                                     *)
(* ------------------------------------------------------------------ *)

let test_worker_requires_running_lease () =
  with_temp_dir (fun dir ->
      let spec = fig2_spec () in
      (* no lease at all *)
      let wdir = Filename.concat dir "wave-0000" in
      Unix.mkdir wdir 0o755;
      (match
         C.worker ~dir ~wave:0 ~chunk:0 ~heartbeat_interval:0.01 spec
       with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "worker ran without a lease");
      (* a lease that is not Running (e.g. already Done) must be refused:
         the supervisor owns all transitions into Running *)
      let lfp = C.fingerprint spec ^ " wave=0" in
      Lease.save ~dir:wdir ~fingerprint:lfp
        {
          Lease.shard = 0; lo = 0; hi = 1; status = Lease.Done; owner = 0;
          heartbeat = 0.0; attempts = 1;
        };
      match C.worker ~dir ~wave:0 ~chunk:0 ~heartbeat_interval:0.01 spec with
      | Error e -> check "refused" true (Astring_like.contains e "not running")
      | Ok () -> Alcotest.fail "worker ran a Done lease")

(* ------------------------------------------------------------------ *)
(* Subprocess supervision (re-exec children)                           *)
(* ------------------------------------------------------------------ *)

let child_flag = "--ncg-carto-child"

let worker_child = function
  | [ dir; point; wave; chunk ] -> (
      match C.point_spec point with
      | None ->
          prerr_endline ("unknown carto point " ^ point);
          exit 64
      | Some spec ->
          exit
            (match
               C.worker ~dir ~wave:(int_of_string wave)
                 ~chunk:(int_of_string chunk) ~heartbeat_interval:0.01 spec
             with
            | Ok () -> 0
            | Error _ -> 3
            | exception _ -> 4))
  | _ ->
      prerr_endline "bad carto worker-child arguments";
      exit 64

let maybe_run_child () =
  let rec after_flag = function
    | [] -> None
    | flag :: rest when flag = child_flag -> Some rest
    | _ :: rest -> after_flag rest
  in
  match after_flag (Array.to_list Sys.argv) with
  | None -> ()
  | Some ("worker" :: args) -> worker_child args
  | Some ("crash" :: _) ->
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      exit 9
  | Some _ ->
      prerr_endline "unknown carto child mode";
      exit 64

let run_child args =
  Unix.create_process Sys.executable_name
    (Array.of_list (Sys.executable_name :: child_flag :: args))
    Unix.stdin Unix.stdout Unix.stderr

let test_supervise_subprocess_with_crash () =
  with_temp_dir (fun dir ->
      let point = "fig2-br" in
      let spec = fig2_spec () in
      let reference =
        with_temp_dir (fun d -> C.run (in_process_config ~dir:d) spec)
      in
      let spawned = ref 0 in
      let spawn ~wave ~chunk =
        incr spawned;
        (* the very first worker dies by SIGKILL before doing any work *)
        if !spawned = 1 then run_child [ "crash" ]
        else
          run_child
            [ "worker"; dir; point; string_of_int wave; string_of_int chunk ]
      in
      let cfg =
        {
          (in_process_config ~dir) with
          C.chunk_size = 1;
          workers = 2;
          heartbeat_timeout = 20.0;
          poll_interval = 0.01;
          max_respawns = 2;
          spawn = Some spawn;
        }
      in
      let r = C.run cfg spec in
      check "the dead worker was reassigned" true (r.C.respawns >= 1);
      check_str "crash does not change the region" reference.C.region_fingerprint
        r.C.region_fingerprint;
      check_int "explored matches" reference.C.explored r.C.explored;
      check "cycle still found" true r.C.has_cycle)

let test_supervise_aborts_hopeless_chunk () =
  with_temp_dir (fun dir ->
      let spec = fig2_spec () in
      let spawn ~wave:_ ~chunk:_ = run_child [ "crash" ] in
      let cfg =
        {
          (in_process_config ~dir) with
          C.workers = 1;
          poll_interval = 0.01;
          max_respawns = 1;
          spawn = Some spawn;
        }
      in
      (* an incomplete region is a wrong answer: the run must abort, not
         quarantine-and-continue like the trial fleet *)
      check "aborts after max_respawns" true
        (match C.run cfg spec with
        | exception Failure m -> Astring_like.contains m "attempts"
        | _ -> false))

let suite =
  ( "carto",
    [
      Alcotest.test_case "state codec roundtrip" `Quick test_codec_roundtrip;
      Alcotest.test_case "state codec rejects malformed" `Quick
        test_codec_rejects_malformed;
      Alcotest.test_case "ledger roundtrip" `Quick test_ledger_roundtrip;
      Alcotest.test_case "ledger torn tail is a prefix" `Quick
        test_ledger_torn_tail_is_prefix;
      Alcotest.test_case "ledger mid-file corruption is an error" `Quick
        test_ledger_midfile_corruption_is_error;
      Alcotest.test_case "ledger rollback" `Quick test_ledger_rollback;
      Alcotest.test_case "fig2 = single-process explorer" `Quick
        test_fig2_matches_statespace;
      Alcotest.test_case "chunking invariance + rechunked resume" `Quick
        test_chunking_invariance;
      Alcotest.test_case "small-n matrix = single-process explorer" `Slow
        test_small_n_matrix_matches_statespace;
      Alcotest.test_case "iso keying deterministic" `Quick
        test_iso_mode_deterministic;
      Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
      Alcotest.test_case "meta guard" `Quick test_meta_guard;
      Alcotest.test_case "recovery rolls back uncommitted ledger" `Quick
        test_recovery_rolls_back_uncommitted_ledger;
      Alcotest.test_case "worker requires a running lease" `Quick
        test_worker_requires_running_lease;
      Alcotest.test_case "supervise subprocess with crash" `Quick
        test_supervise_subprocess_with_crash;
      Alcotest.test_case "supervise aborts hopeless chunk" `Quick
        test_supervise_aborts_hopeless_chunk;
    ] )
