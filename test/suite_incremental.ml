(* Incremental distance cache suite: the cross-step [Distcache] must hold
   tables byte-identical to a fresh BFS after every single-edge patch, for
   every keep / repair / rebuild decision it can take.  The decision rules
   themselves are pinned by unit tests (stats deltas on hand-built graphs,
   both delta directions), and a QCheck property drives long random
   add/remove sequences — the primitive decomposition of every buy, delete
   and swap — re-checking all n tables after each patch. *)
open Ncg_graph
open Ncg_game

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fill_all cache g =
  for v = 0 to Graph.n g - 1 do
    Distcache.set cache v (Paths.distances g v)
  done

let tables_exact cache g =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    match Distcache.get cache v with
    | None -> ok := false
    | Some d -> if Intvec.to_array d <> Paths.distances g v then ok := false
  done;
  !ok

let add cache g a b =
  Graph.add_edge g ~owner:a a b;
  Distcache.note_added cache g a b

let remove cache g a b =
  Graph.remove_edge g a b;
  Distcache.note_removed cache g a b

(* Stats delta of one patch, for asserting which rule fired. *)
let delta cache f =
  let before = Distcache.stats cache in
  f ();
  let after = Distcache.stats cache in
  Distcache.
    {
      kept = after.kept - before.kept;
      repaired = after.repaired - before.repaired;
      rebuilt = after.rebuilt - before.rebuilt;
      fills = after.fills - before.fills;
      evicted = after.evicted - before.evicted;
    }

(* ------------------------------------------------------------------ *)
(* Unit tests: each decision rule, both delta directions               *)
(* ------------------------------------------------------------------ *)

let test_insert_keep () =
  (* A 4-cycle plus chord candidates: adding {0,2} to 0-1-2-3-0 links two
     vertices at distance 2 — every source with |d(0) - d(2)| <= 1 keeps
     its table, the others repair.  From sources 1 and 3 the endpoints are
     equidistant (d = 1 each), so those two tables are provably kept. *)
  let g = Gen.cycle 4 in
  let cache = Distcache.create 4 in
  fill_all cache g;
  let d = delta cache (fun () -> add cache g 0 2) in
  check "tables exact after insert" true (tables_exact cache g);
  check_int "equidistant sources kept" 2 d.Distcache.kept;
  check_int "shortcut sources repaired" 2 d.Distcache.repaired;
  check_int "no rebuild on insert" 0 d.Distcache.rebuilt

let test_insert_repair_decreases () =
  (* A long path with a shortcut across it: distances from the far end
     drop by many levels at once, so the decrease-only BFS must cascade
     past the immediate endpoint. *)
  let n = 12 in
  let g = Gen.path n in
  let cache = Distcache.create n in
  fill_all cache g;
  let d = delta cache (fun () -> add cache g 0 (n - 1)) in
  check "tables exact after long shortcut" true (tables_exact cache g);
  check "shortcut repaired some tables" true (d.Distcache.repaired > 0);
  check_int "no rebuild on insert" 0 d.Distcache.rebuilt;
  (* the distance from 0 to the far end is now 1, and midpoints halve *)
  match Distcache.get cache 0 with
  | None -> Alcotest.fail "table evicted"
  | Some t -> check_int "far end now adjacent" 1 (Intvec.get t (n - 1))

let test_insert_unreachable_keep () =
  (* Adding an edge inside a component unreachable from the source can
     never change the source's table: both endpoints at -1 are kept. *)
  let g = Graph.create 6 in
  Graph.add_edge g ~owner:0 0 1;
  Graph.add_edge g ~owner:2 2 3;
  Graph.add_edge g ~owner:3 3 4;
  let cache = Distcache.create 6 in
  fill_all cache g;
  let d = delta cache (fun () -> add cache g 2 4) in
  check "tables exact" true (tables_exact cache g);
  (* sources 0, 1 and 5 see both endpoints at -1 — provably kept; source 3
     sees them equidistant — kept; sources 2 and 4 gain a shortcut
     (distance drops from 2 to 1) — repaired *)
  check_int "unreachable and equidistant sources kept" 4 d.Distcache.kept;
  check_int "only the endpoints repair" 2 d.Distcache.repaired

let test_delete_keep_equidistant () =
  (* An even cycle: the edge across from the source lies on no shortest
     path from it (both endpoints equidistant), so that table is kept. *)
  let g = Gen.cycle 6 in
  let cache = Distcache.create 6 in
  fill_all cache g;
  let d = delta cache (fun () -> remove cache g 3 4) in
  check "tables exact after delete" true (tables_exact cache g);
  (* from source 0: d(3) = 3, d(4) = 2 -> not equidistant; but from the
     two vertices opposite the removed edge the endpoints tie *)
  check "some tables kept" true (d.Distcache.kept > 0);
  check "others repaired or rebuilt" true
    (d.Distcache.repaired + d.Distcache.rebuilt > 0)

let test_delete_fast_keep_alternate_parent () =
  (* Diamond 0-{1,2}-3 plus a tail 3-4: removing {1,3}.  From sources 0
     and 2 the far endpoint reroutes through an alternate parent at the
     same level (0: 3 keeps neighbor 2 at level 1; 2: 1 keeps neighbor 0
     at level 1), so those two tables are proved unchanged without any
     BFS.  From 1, 3 and 4 distances genuinely grow — repaired. *)
  let g = Graph.create 5 in
  Graph.add_edge g ~owner:0 0 1;
  Graph.add_edge g ~owner:0 0 2;
  Graph.add_edge g ~owner:1 1 3;
  Graph.add_edge g ~owner:2 2 3;
  Graph.add_edge g ~owner:3 3 4;
  let cache = Distcache.create 5 in
  fill_all cache g;
  let d = delta cache (fun () -> remove cache g 1 3) in
  check "tables exact" true (tables_exact cache g);
  check_int "alternate-parent sources kept" 2 d.Distcache.kept;
  check_int "stretched sources repaired" 3 d.Distcache.repaired;
  check_int "no rebuild" 0 d.Distcache.rebuilt

let test_delete_repair_increases () =
  (* A cycle with one chord: removing the chord pushes a small affected
     region farther away — repairable without a full scan. *)
  let g = Gen.cycle 8 in
  Graph.add_edge g ~owner:0 0 4;
  let cache = Distcache.create 8 in
  fill_all cache g;
  let d = delta cache (fun () -> remove cache g 0 4) in
  check "tables exact after chord removal" true (tables_exact cache g);
  check "chord removal repaired some tables" true (d.Distcache.repaired > 0);
  check_int "affected sets stay under threshold" 0 d.Distcache.rebuilt

let test_delete_disconnects () =
  (* Removing a bridge sends the far side to -1 in every near-side table
     (and vice versa) — the repair must produce the fresh-BFS sentinel,
     not stale finite distances. *)
  let g = Gen.path 6 in
  let cache = Distcache.create 6 in
  fill_all cache g;
  remove cache g 2 3;
  check "tables exact after disconnect" true (tables_exact cache g);
  match Distcache.get cache 0 with
  | None -> Alcotest.fail "table evicted"
  | Some t ->
      check_int "far side unreachable" (-1) (Intvec.get t 5);
      check_int "near side intact" 2 (Intvec.get t 2)

let test_delete_rebuild_fallback () =
  (* threshold 0: every non-kept deletion overflows the affected-set bound
     and must fall back to a full rebuild — with identical tables. *)
  let n = 8 in
  let g = Gen.cycle n in
  Graph.add_edge g ~owner:0 0 4;
  let cache = Distcache.create ~threshold:0 n in
  fill_all cache g;
  let d = delta cache (fun () -> remove cache g 0 4) in
  check "tables exact under forced fallback" true (tables_exact cache g);
  check_int "no incremental repair at threshold 0" 0 d.Distcache.repaired;
  check "fallback rebuilt the changed tables" true (d.Distcache.rebuilt > 0)

let test_lazy_tables_stay_lazy () =
  (* Sources never filled must stay absent: patching is per cached table,
     not an excuse to materialize the rest. *)
  let g = Gen.path 5 in
  let cache = Distcache.create 5 in
  Distcache.set cache 0 (Paths.distances g 0);
  add cache g 0 4;
  check "filled table exact" true
    (match Distcache.get cache 0 with
    | Some d -> Intvec.to_array d = Paths.distances g 0
    | None -> false);
  check "unfilled tables untouched" true (Distcache.get cache 3 = None)

let test_versions_move_with_patches () =
  (* The witness skip certificates lean on these counters: table versions
     bump exactly when a table changes, touch versions bump for the
     endpoints of every primitive — kept or not. *)
  let g = Gen.cycle 4 in
  let cache = Distcache.create 4 in
  fill_all cache g;
  let tv1 = Distcache.table_version cache 1 in
  let tu0 = Distcache.touch_version cache 0 in
  let tu3 = Distcache.touch_version cache 3 in
  add cache g 0 2;
  (* source 1 is equidistant from both endpoints: kept, version frozen *)
  check_int "kept table version unchanged" tv1
    (Distcache.table_version cache 1);
  check "endpoint touch version bumped" true
    (Distcache.touch_version cache 0 > tu0);
  check_int "bystander touch version unchanged" tu3
    (Distcache.touch_version cache 3)

(* ------------------------------------------------------------------ *)
(* QCheck: random move sequences, tables re-checked after every patch  *)
(* ------------------------------------------------------------------ *)

let arb_seq =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 100_000) (int_range 4 14))

(* One random primitive against the current graph: prefer a toggle that
   exists so sequences mix dense and sparse regimes.  Swaps are exercised
   implicitly — a swap is exactly remove-then-add, and the cache is
   patched per primitive. *)
let random_patch rng cache g =
  let n = Graph.n g in
  let a = Random.State.int rng n in
  let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
  if Graph.has_edge g a b then remove cache g a b else add cache g a b

let prop_incremental_matches_fresh_bfs =
  QCheck.Test.make ~count:80
    ~name:"incremental tables = fresh BFS after every random patch"
    arb_seq
    (fun (seed, n) ->
      let rng = Random.State.make [| seed; 0x1ac |] in
      let m = min (n + 3) (n * (n - 1) / 2) in
      let g = Graph.copy (Gen.random_m_edges rng n m) in
      let cache = Distcache.create n in
      fill_all cache g;
      let ok = ref true in
      for _ = 1 to 30 do
        random_patch rng cache g;
        if not (tables_exact cache g) then ok := false
      done;
      !ok)

let prop_tiny_threshold_matches =
  QCheck.Test.make ~count:40
    ~name:"rebuild fallback (threshold 1) is table-identical to repairs"
    arb_seq
    (fun (seed, n) ->
      let rng = Random.State.make [| seed; 0x7f |] in
      let g = Graph.copy (Gen.random_connected rng n 0.3) in
      let cache = Distcache.create ~threshold:1 n in
      fill_all cache g;
      let ok = ref true in
      for _ = 1 to 25 do
        random_patch rng cache g;
        if not (tables_exact cache g) then ok := false
      done;
      !ok)

let suite =
  ( "incremental",
    [
      Alcotest.test_case "insert: equidistant keep" `Quick test_insert_keep;
      Alcotest.test_case "insert: cascading repair" `Quick
        test_insert_repair_decreases;
      Alcotest.test_case "insert: unreachable keep" `Quick
        test_insert_unreachable_keep;
      Alcotest.test_case "delete: equidistant keep" `Quick
        test_delete_keep_equidistant;
      Alcotest.test_case "delete: alternate-parent keep" `Quick
        test_delete_fast_keep_alternate_parent;
      Alcotest.test_case "delete: bounded repair" `Quick
        test_delete_repair_increases;
      Alcotest.test_case "delete: disconnection" `Quick test_delete_disconnects;
      Alcotest.test_case "delete: rebuild fallback" `Quick
        test_delete_rebuild_fallback;
      Alcotest.test_case "lazy tables stay lazy" `Quick
        test_lazy_tables_stay_lazy;
      Alcotest.test_case "version counters" `Quick
        test_versions_move_with_patches;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_incremental_matches_fresh_bfs; prop_tiny_threshold_matches ] )
