(* Aggregated test runner: `dune runtest`. *)
let () =
  Alcotest.run "ncg-repro"
    [
      Suite_rational.suite;
      Suite_graph.suite;
      Suite_game.suite;
      Suite_core.suite;
      Suite_differential.suite;
      Suite_sentinel.suite;
      Suite_envelope.suite;
      Suite_parallel.suite;
      Suite_instances.suite;
      Suite_search.suite;
      Suite_experiments.suite;
    ]
