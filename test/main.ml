(* Aggregated test runner: `dune runtest`.

   The binary doubles as the fleet suite's worker subprocess: when invoked
   with its child-mode flag it runs that mode and exits here, before
   alcotest can object to the unknown arguments. *)
let () = Suite_faulty.maybe_run_child ()
let () = Suite_fleet.maybe_run_child ()
let () = Suite_service.maybe_run_child ()
let () = Suite_carto.maybe_run_child ()

let () =
  Alcotest.run "ncg-repro"
    [
      Suite_rational.suite;
      Suite_graph.suite;
      Suite_game.suite;
      Suite_core.suite;
      Suite_differential.suite;
      Suite_incremental.suite;
      Suite_sublinear.suite;
      Suite_sentinel.suite;
      Suite_envelope.suite;
      Suite_parallel.suite;
      Suite_instances.suite;
      Suite_search.suite;
      Suite_experiments.suite;
      Suite_batch.suite;
      Suite_faulty.suite;
      Suite_fleet.suite;
      Suite_service.suite;
      Suite_carto.suite;
    ]
