(* Tests for the fault-tolerant parallel substrate. *)

module Pool = Ncg_parallel.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

exception Boom of int

let test_map_result_ok () =
  let xs = List.init 23 (fun i -> i) in
  let expected = List.map (fun x -> Ok (x + 1)) xs in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "all Ok, order stable (domains=%d)" domains)
        true
        (Pool.map_result ~domains (fun x -> x + 1) xs = expected))
    [ 1; 2; 4 ]

let test_map_result_captures () =
  let xs = List.init 20 (fun i -> i) in
  let f x = if x = 7 then raise (Boom x) else 10 * x in
  let results = Pool.map_result ~domains:4 f xs in
  check_int "one result per item" 20 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok y ->
          check "non-raising items keep their results" true
            (i <> 7 && y = 10 * i)
      | Error (Boom b, _) ->
          check "only item 7 failed" true (i = 7 && b = 7)
      | Error _ -> Alcotest.fail "unexpected exception")
    results

let test_map_result_multiple_failures () =
  let xs = List.init 30 (fun i -> i) in
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  let results = Pool.map_result ~domains:3 f xs in
  let oks = List.filter Result.is_ok results in
  let errs = List.filter Result.is_error results in
  check_int "20 survivors" 20 (List.length oks);
  check_int "10 captured failures" 10 (List.length errs)

let test_map_reraises_after_finishing () =
  (* [map] still raises — but only after every item was attempted, so a
     side effect from the last item proves no chunk was abandoned. *)
  let ran_last = Atomic.make false in
  let f x =
    if x = 0 then failwith "early";
    if x = 9 then Atomic.set ran_last true;
    x
  in
  (match Pool.map ~domains:2 f (List.init 10 (fun i -> i)) with
  | _ -> Alcotest.fail "expected the exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "message" "early" msg);
  check "all chunks completed before the re-raise" true
    (Atomic.get ran_last)

let test_chunking_edge_cases () =
  let square x = x * x in
  Alcotest.(check (list int)) "items < domains" [ 1; 4; 9 ]
    (Pool.map ~domains:8 square [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "single item" [ 49 ]
    (Pool.map ~domains:8 square [ 7 ]);
  Alcotest.(check (list int)) "empty list" []
    (Pool.map ~domains:4 square []);
  check "empty map_result" true (Pool.map_result ~domains:4 square [] = []);
  check "single-item map_result" true
    (Pool.map_result ~domains:8 square [ 3 ] = [ Ok 9 ]);
  check_int "domains=0 behaves sequentially" 6
    (Pool.map_reduce ~domains:0 ~map:(fun x -> x) ~combine:( + ) 0
       [ 1; 2; 3 ])

(* [map_result] splits items into one contiguous chunk per domain; a
   worker whose very FIRST item raises must still produce results for
   every other item of its chunk and of its siblings.  The property arms
   the worst case — every chunk's first item raises at once. *)
let prop_first_item_failure =
  QCheck.Test.make ~count:100
    ~name:"raising on each domain's first item spares all other items"
    QCheck.(pair (int_range 2 120) (int_range 2 6))
    (fun (n, domains) ->
      let k = min domains n in
      let base = n / k and extra = n mod k in
      (* first index of chunk [i], mirroring the pool's chunking *)
      let first_of i = (i * base) + min i extra in
      let firsts = List.init k first_of in
      let f x = if List.mem x firsts then raise (Boom x) else x + 1 in
      let results = Pool.map_result ~domains f (List.init n (fun i -> i)) in
      List.length results = n
      && List.for_all2
           (fun i r ->
             match r with
             | Ok y -> (not (List.mem i firsts)) && y = i + 1
             | Error (Boom b, _) -> List.mem i firsts && b = i
             | Error _ -> false)
           (List.init n (fun i -> i))
           results)

let test_order_stability_large () =
  let xs = List.init 157 (fun i -> i) in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved with %d domains" domains)
        (List.map (fun x -> 2 * x) xs)
        (Pool.map ~domains (fun x -> 2 * x) xs))
    [ 2; 3; 5; 8 ]

let suite =
  ( "parallel",
    [
      Alcotest.test_case "map_result ok path" `Quick test_map_result_ok;
      Alcotest.test_case "map_result captures exception" `Quick
        test_map_result_captures;
      Alcotest.test_case "map_result multiple failures" `Quick
        test_map_result_multiple_failures;
      Alcotest.test_case "map re-raises after all chunks" `Quick
        test_map_reraises_after_finishing;
      Alcotest.test_case "chunking edge cases" `Quick
        test_chunking_edge_cases;
      Alcotest.test_case "order stability" `Quick test_order_stability_large;
      QCheck_alcotest.to_alcotest prop_first_item_failure;
    ] )
